//! The binary wire codec: a hand-rolled, versioned, length-prefixed
//! encoding for every client↔server message.
//!
//! Layout
//! ------
//! Every message travels as one **frame**:
//!
//! ```text
//! +-------+-----+---------+--------+--------+--------+--------+-------+---------+
//! | magic | ver | msgtype | paylen | trace  | req id | crc32  | db id | payload |
//! | "EQ"  | u8  | u8      | u32 LE | u64 LE | u64 LE | u32 LE | 64 B  | paylen  |
//! +-------+-----+---------+--------+--------+--------+--------+-------+---------+
//! ```
//!
//! The `trace` field is new in protocol version 2: a query-scoped trace id
//! (0 = untraced) that stitches client- and server-side telemetry spans
//! into one tree. Version 3 adds two more framing fields after it: a
//! client-generated **request id** (0 = unassigned) that lets the retry
//! layer replay a request over a fresh connection while the server
//! deduplicates mutations, and a **CRC32** over the rest of the frame so a
//! bit flipped in transit surfaces as a typed [`CodecError::Checksum`]
//! instead of a silently wrong (or confusingly malformed) message. Version
//! 4 adds a fixed-width **db id** field (one length byte + up to
//! [`MAX_DB_ID_LEN`] bytes of name, zero-padded) so one serve loop can host
//! many sealed databases: the server routes each request to the tenant the
//! frame names, and an empty id (length 0) means "the configured default
//! db", which is also how v1–v3 peers (who cannot name a db at all) are
//! routed. The db field sits after the checksum field and is covered by
//! the checksum. Version 1–3 frames are still accepted, and replies to an
//! old-version request are encoded in that version so legacy peers keep
//! working; `paylen` counts payload bytes only in every version.
//!
//! Inside payloads, integers are LEB128 varints (`u128` is fixed 16-byte
//! little-endian), strings and byte arrays are varint-length-prefixed, and
//! enums carry a one-byte tag. The encoding is the *single source of truth*
//! for transmission accounting: `ServerQuery::wire_size` and
//! `ServerResponse::payload_bytes` are exact encoded lengths, not estimates.
//!
//! Robustness: everything here decodes **attacker-supplied** bytes on the
//! server path, so every read is bounds-checked, declared element counts are
//! validated against the bytes actually remaining (no allocation bombs),
//! recursion depth is capped, and structural invariants (`Interval::lo <
//! hi`, anchor in range) are re-validated instead of trusted. Decoding never
//! panics; it returns [`CodecError`].

use crate::cache::CacheStatsSnapshot;
use crate::error::CoreError;
use crate::telemetry::{Side, SpanRec};
use crate::update::{DeleteOutcome, InsertDelta, InsertionSlot};
use crate::wire::{SAxis, SPred, SStep, ServerQuery, ServerResponse};
use exq_crypto::block::TAG_BYTES;
use exq_crypto::{SealedBlock, ValueRange};
use exq_index::dsi::Interval;
use exq_xpath::{CmpOp, Literal};
use std::time::Duration;

/// Protocol version carried in every frame header. Version 2 added the
/// trace-id field after the fixed header and the telemetry fields on
/// [`ServerResponse`]; version 3 added the request-id and checksum fields
/// plus the `Ping`/`Pong`/`Busy` message types; version 4 added the db-id
/// field that routes a frame to one named database on a multi-tenant
/// server; version 5 adds the `Batch`/`BatchAnswer` message types that
/// carry a group of read-style requests (and their replies) in one frame.
/// The framing fields are unchanged from v4.
pub const PROTOCOL_VERSION: u8 = 5;

/// The version that introduced the db-id framing field, still accepted
/// inbound; replies to a v4 request are encoded as v4.
pub const V4_PROTOCOL_VERSION: u8 = 4;

/// The version that introduced the request-id and checksum fields, still
/// accepted inbound; replies to a v3 request are encoded as v3.
pub const V3_PROTOCOL_VERSION: u8 = 3;

/// The version that introduced the trace-id field, still accepted inbound;
/// replies to a v2 request are encoded as v2.
pub const V2_PROTOCOL_VERSION: u8 = 2;

/// The original protocol version, still accepted inbound; replies to a v1
/// request are encoded as v1.
pub const LEGACY_PROTOCOL_VERSION: u8 = 1;

/// Frame magic: the first two bytes of every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"EQ";

/// Fixed frame header length (magic + version + type + payload length),
/// common to all protocol versions.
pub const FRAME_HEADER_LEN: usize = 8;

/// Length of the trace-id field that follows the fixed header (v2+).
pub const TRACE_FIELD_LEN: usize = 8;

/// Length of the request-id field that follows the trace id (v3+).
pub const REQ_ID_FIELD_LEN: usize = 8;

/// Length of the frame-checksum field that follows the request id (v3+).
pub const CHECKSUM_FIELD_LEN: usize = 4;

/// Maximum length of a database id in bytes. Chosen so the db field stays
/// fixed-width (one length byte + this many name bytes) and
/// [`frame_extra_len`] remains a pure function of the protocol version.
pub const MAX_DB_ID_LEN: usize = 63;

/// Length of the fixed-width db-id field that follows the checksum (v4+):
/// one length byte plus [`MAX_DB_ID_LEN`] name bytes, zero-padded.
pub const DB_ID_FIELD_LEN: usize = 1 + MAX_DB_ID_LEN;

/// Framing bytes after the fixed header in a current-version frame.
pub const FRAME_EXTRA_LEN: usize =
    TRACE_FIELD_LEN + REQ_ID_FIELD_LEN + CHECKSUM_FIELD_LEN + DB_ID_FIELD_LEN;

/// Length of the trace-id field for a given protocol version.
pub fn trace_field_len(version: u8) -> usize {
    if version >= V2_PROTOCOL_VERSION {
        TRACE_FIELD_LEN
    } else {
        0
    }
}

/// Bytes after the fixed header that belong to framing (not payload) for a
/// given protocol version: nothing in v1, the trace id in v2, trace id +
/// request id + checksum in v3, all of those plus the db id in v4 and v5.
pub fn frame_extra_len(version: u8) -> usize {
    trace_field_len(version)
        + if version >= V3_PROTOCOL_VERSION {
            REQ_ID_FIELD_LEN + CHECKSUM_FIELD_LEN
        } else {
            0
        }
        + if version >= V4_PROTOCOL_VERSION {
            DB_ID_FIELD_LEN
        } else {
            0
        }
}

// ------------------------------------------------------------------ crc32 --

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over the concatenation of
/// `parts`. Detects every single-bit and ≤32-bit-burst error, which is what
/// the frame checksum needs: a flipped byte anywhere in a v3 frame must
/// decode to a typed error, never a different message.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Hard cap on a frame payload; anything larger is rejected before
/// allocation.
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Cap on `SStep`/`SPred` nesting; legitimate translated queries are a
/// handful of levels deep.
pub const MAX_PATTERN_DEPTH: usize = 64;

/// Decoding failure. Every variant is reachable from malformed or malicious
/// input; none of them panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated,
    /// Frame does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// Frame version is not one of the supported protocol versions
    /// ([`LEGACY_PROTOCOL_VERSION`]..=[`PROTOCOL_VERSION`]).
    BadVersion(u8),
    /// The v3 frame checksum did not match: the frame was corrupted in
    /// transit (or deliberately, by fault injection).
    Checksum { stored: u32, computed: u32 },
    /// Unknown enum/message tag for the given context.
    BadTag { context: &'static str, tag: u8 },
    /// Declared length exceeds the hard cap.
    Oversize { len: usize, max: usize },
    /// Declared element count cannot fit in the remaining bytes.
    CountOverflow,
    /// Pattern nesting exceeded [`MAX_PATTERN_DEPTH`].
    DepthExceeded,
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A decoded string was not valid UTF-8.
    Utf8,
    /// A semantic invariant failed after structural decoding.
    Invalid(&'static str),
    /// Payload decoded but bytes were left over.
    TrailingBytes(usize),
    /// The v4 db-id framing field is malformed: oversized length byte,
    /// non-UTF-8 name bytes, or nonzero padding.
    DbId(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} \
                     (want {LEGACY_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                )
            }
            CodecError::Checksum { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            CodecError::BadTag { context, tag } => write!(f, "unknown {context} tag {tag:#04x}"),
            CodecError::Oversize { len, max } => write!(f, "length {len} exceeds cap {max}"),
            CodecError::CountOverflow => write!(f, "element count exceeds remaining bytes"),
            CodecError::DepthExceeded => write!(f, "pattern nesting exceeds {MAX_PATTERN_DEPTH}"),
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::Utf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::DbId(what) => write!(f, "malformed db id field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> CoreError {
        CoreError::Codec(e.to_string())
    }
}

// ----------------------------------------------------------------- writer --

/// Payload writer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// LEB128.
    fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    fn usize(&mut self, v: usize) {
        self.varint(v as u64);
    }

    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.raw(bytes);
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn duration(&mut self, d: Duration) {
        // Fixed-width nanoseconds (u64 holds ~584 years): a varint here
        // would make the frame length depend on measured timing jitter,
        // breaking "identical queries produce identical byte counts".
        self.raw(&(d.as_nanos().min(u64::MAX as u128) as u64).to_le_bytes());
    }
}

// ----------------------------------------------------------------- reader --

/// Bounds-checked payload reader.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                // Reject non-canonical bits that don't fit in u64.
                if shift == 63 && byte > 1 {
                    return Err(CodecError::VarintOverflow);
                }
                return Ok(v);
            }
        }
        Err(CodecError::VarintOverflow)
    }

    fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| CodecError::VarintOverflow)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.varint()?).map_err(|_| CodecError::VarintOverflow)
    }

    fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.array()?)))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let raw = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(raw);
        Ok(out)
    }

    fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(CodecError::Truncated);
        }
        self.take(len)
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CodecError::Utf8)
    }

    fn duration(&mut self) -> Result<Duration, CodecError> {
        Ok(Duration::from_nanos(u64::from_le_bytes(self.array()?)))
    }

    /// Reads an element count and proves it can fit in the remaining input
    /// (each element needs at least `min_entry` bytes). This is what stops
    /// a 16-byte frame from declaring a billion-entry vector.
    fn count(&mut self, min_entry: usize) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n.checked_mul(min_entry.max(1))
            .ok_or(CodecError::CountOverflow)?
            > self.remaining()
        {
            return Err(CodecError::CountOverflow);
        }
        Ok(n)
    }

    /// Fails unless the reader consumed every byte.
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }
}

// ------------------------------------------------------------------ trait --

/// Types with a wire encoding. `encode`/`decode` operate on bare payloads
/// (no frame header); [`Message`] adds framing on top.
pub trait WireCodec: Sized {
    fn encode_into(&self, enc: &mut Enc);
    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError>;

    /// Encoded payload as a standalone byte string.
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.encode_into(&mut enc);
        enc.into_bytes()
    }

    /// Exact encoded length in bytes.
    fn encoded_len(&self) -> usize {
        // Simple and always exact; encoding is cheap relative to the crypto
        // and joins around it.
        self.encode().len()
    }

    /// Decodes a standalone payload, requiring full consumption.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(bytes);
        let v = Self::decode_from(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

// ------------------------------------------------------------- leaf types --

impl WireCodec for Interval {
    fn encode_into(&self, enc: &mut Enc) {
        enc.varint(self.lo);
        enc.varint(self.hi);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let lo = dec.varint()?;
        let hi = dec.varint()?;
        // Re-establish the labeling invariant instead of trusting the peer;
        // `Interval::new` only debug-asserts it.
        if lo >= hi {
            return Err(CodecError::Invalid("interval lo >= hi"));
        }
        Ok(Interval { lo, hi })
    }
}

impl WireCodec for ValueRange {
    fn encode_into(&self, enc: &mut Enc) {
        enc.u128(self.lo);
        enc.u128(self.hi);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(ValueRange {
            lo: dec.u128()?,
            hi: dec.u128()?,
        })
    }
}

impl WireCodec for SAxis {
    fn encode_into(&self, enc: &mut Enc) {
        enc.u8(match self {
            SAxis::Child => 0,
            SAxis::Descendant => 1,
            SAxis::DescendantOrSelf => 2,
            SAxis::Attribute => 3,
        });
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(SAxis::Child),
            1 => Ok(SAxis::Descendant),
            2 => Ok(SAxis::DescendantOrSelf),
            3 => Ok(SAxis::Attribute),
            tag => Err(CodecError::BadTag {
                context: "axis",
                tag,
            }),
        }
    }
}

impl WireCodec for CmpOp {
    fn encode_into(&self, enc: &mut Enc) {
        enc.u8(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(CmpOp::Eq),
            1 => Ok(CmpOp::Ne),
            2 => Ok(CmpOp::Lt),
            3 => Ok(CmpOp::Le),
            4 => Ok(CmpOp::Gt),
            5 => Ok(CmpOp::Ge),
            tag => Err(CodecError::BadTag {
                context: "cmp-op",
                tag,
            }),
        }
    }
}

impl WireCodec for Literal {
    fn encode_into(&self, enc: &mut Enc) {
        match self {
            Literal::Number(n) => {
                enc.u8(0);
                enc.f64(*n);
            }
            Literal::Str(s) => {
                enc.u8(1);
                enc.str(s);
            }
        }
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(Literal::Number(dec.f64()?)),
            1 => Ok(Literal::Str(dec.str()?)),
            tag => Err(CodecError::BadTag {
                context: "literal",
                tag,
            }),
        }
    }
}

impl WireCodec for SealedBlock {
    fn encode_into(&self, enc: &mut Enc) {
        enc.varint(self.id as u64);
        enc.raw(&self.nonce);
        enc.bytes(&self.ciphertext);
        enc.raw(&self.tag);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let id = dec.u32()?;
        let nonce: [u8; 12] = dec.array()?;
        let ciphertext = dec.bytes()?.to_vec();
        let tag: [u8; TAG_BYTES] = dec.array()?;
        Ok(SealedBlock {
            id,
            nonce,
            ciphertext,
            tag,
        })
    }
}

// --------------------------------------------------------- query patterns --

fn encode_steps(steps: &[SStep], enc: &mut Enc) {
    enc.usize(steps.len());
    for s in steps {
        s.axis.encode_into(enc);
        enc.usize(s.tags.len());
        for t in &s.tags {
            enc.str(t);
        }
        enc.usize(s.preds.len());
        for p in &s.preds {
            encode_pred(p, enc);
        }
    }
}

fn encode_pred(pred: &SPred, enc: &mut Enc) {
    match pred {
        SPred::Exists(steps) => {
            enc.u8(0);
            encode_steps(steps, enc);
        }
        SPred::Value { path, range, plain } => {
            enc.u8(1);
            encode_steps(path, enc);
            match range {
                None => enc.u8(0),
                Some((key, r)) => {
                    enc.u8(1);
                    enc.str(key);
                    r.encode_into(enc);
                }
            }
            match plain {
                None => enc.u8(0),
                Some((op, lit)) => {
                    enc.u8(1);
                    op.encode_into(enc);
                    lit.encode_into(enc);
                }
            }
        }
    }
}

fn decode_steps(dec: &mut Dec<'_>, depth: usize) -> Result<Vec<SStep>, CodecError> {
    if depth > MAX_PATTERN_DEPTH {
        return Err(CodecError::DepthExceeded);
    }
    // Minimum step: axis byte + two zero counts.
    let n = dec.count(3)?;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        let axis = SAxis::decode_from(dec)?;
        let n_tags = dec.count(1)?;
        let mut tags = Vec::with_capacity(n_tags);
        for _ in 0..n_tags {
            tags.push(dec.str()?);
        }
        let n_preds = dec.count(2)?;
        let mut preds = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            preds.push(decode_pred(dec, depth + 1)?);
        }
        steps.push(SStep { axis, tags, preds });
    }
    Ok(steps)
}

fn decode_pred(dec: &mut Dec<'_>, depth: usize) -> Result<SPred, CodecError> {
    if depth > MAX_PATTERN_DEPTH {
        return Err(CodecError::DepthExceeded);
    }
    match dec.u8()? {
        0 => Ok(SPred::Exists(decode_steps(dec, depth + 1)?)),
        1 => {
            let path = decode_steps(dec, depth + 1)?;
            let range = match dec.u8()? {
                0 => None,
                1 => {
                    let key = dec.str()?;
                    Some((key, ValueRange::decode_from(dec)?))
                }
                tag => {
                    return Err(CodecError::BadTag {
                        context: "value-range option",
                        tag,
                    })
                }
            };
            let plain = match dec.u8()? {
                0 => None,
                1 => {
                    let op = CmpOp::decode_from(dec)?;
                    let lit = Literal::decode_from(dec)?;
                    Some((op, lit))
                }
                tag => {
                    return Err(CodecError::BadTag {
                        context: "plain-cmp option",
                        tag,
                    })
                }
            };
            Ok(SPred::Value { path, range, plain })
        }
        tag => Err(CodecError::BadTag {
            context: "predicate",
            tag,
        }),
    }
}

impl WireCodec for ServerQuery {
    fn encode_into(&self, enc: &mut Enc) {
        encode_steps(&self.steps, enc);
        enc.usize(self.anchor);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let steps = decode_steps(dec, 0)?;
        let anchor = dec.usize()?;
        if steps.is_empty() {
            return Err(CodecError::Invalid("query has no steps"));
        }
        if anchor >= steps.len() {
            return Err(CodecError::Invalid("anchor out of range"));
        }
        Ok(ServerQuery { steps, anchor })
    }
}

impl WireCodec for SpanRec {
    fn encode_into(&self, enc: &mut Enc) {
        enc.varint(self.trace);
        enc.varint(self.id);
        enc.varint(self.parent);
        enc.str(&self.name);
        enc.u8(match self.side {
            Side::Client => 0,
            Side::Server => 1,
        });
        enc.varint(self.start_ns);
        enc.varint(self.dur_ns);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(SpanRec {
            trace: dec.varint()?,
            id: dec.varint()?,
            parent: dec.varint()?,
            name: dec.str()?,
            side: match dec.u8()? {
                0 => Side::Client,
                1 => Side::Server,
                tag => {
                    return Err(CodecError::BadTag {
                        context: "span side",
                        tag,
                    })
                }
            },
            start_ns: dec.varint()?,
            dur_ns: dec.varint()?,
        })
    }
}

/// Minimum encoded [`SpanRec`]: three 1-byte varints, an empty name, the
/// side byte, and two 1-byte varints.
const MIN_SPAN_LEN: usize = 7;

impl ServerResponse {
    /// Shared prefix of the v1 and v2 payload encodings.
    fn encode_core_into(&self, enc: &mut Enc) {
        enc.str(&self.pruned_xml);
        enc.usize(self.blocks.len());
        for b in &self.blocks {
            b.encode_into(enc);
        }
        enc.duration(self.translate_time);
        enc.duration(self.process_time);
    }

    fn decode_core_from(dec: &mut Dec<'_>) -> Result<ServerResponse, CodecError> {
        let pruned_xml = dec.str()?;
        // Minimum sealed block: id + nonce + empty ciphertext + tag.
        let n = dec.count(1 + 12 + 1 + TAG_BYTES)?;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(std::sync::Arc::new(SealedBlock::decode_from(dec)?));
        }
        Ok(ServerResponse {
            pruned_xml,
            blocks,
            translate_time: dec.duration()?,
            process_time: dec.duration()?,
            served_from_cache: false,
            spans: Vec::new(),
        })
    }

    /// v1 payload layout, used for replies to legacy peers: no
    /// `served_from_cache`, no spans.
    pub(crate) fn encode_legacy_into(&self, enc: &mut Enc) {
        self.encode_core_into(enc);
    }

    /// Decodes the v1 payload layout; telemetry fields take their defaults.
    pub(crate) fn decode_legacy_from(dec: &mut Dec<'_>) -> Result<ServerResponse, CodecError> {
        Self::decode_core_from(dec)
    }
}

impl WireCodec for ServerResponse {
    fn encode_into(&self, enc: &mut Enc) {
        self.encode_core_into(enc);
        enc.bool(self.served_from_cache);
        enc.usize(self.spans.len());
        for s in &self.spans {
            s.encode_into(enc);
        }
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut resp = Self::decode_core_from(dec)?;
        resp.served_from_cache = dec.bool()?;
        let n = dec.count(MIN_SPAN_LEN)?;
        let mut spans = Vec::with_capacity(n);
        for _ in 0..n {
            spans.push(SpanRec::decode_from(dec)?);
        }
        resp.spans = spans;
        Ok(resp)
    }
}

impl WireCodec for CacheStatsSnapshot {
    fn encode_into(&self, enc: &mut Enc) {
        enc.varint(self.generation);
        enc.varint(self.capacity);
        enc.varint(self.response_hits);
        enc.varint(self.response_misses);
        enc.varint(self.response_evictions);
        enc.varint(self.response_entries);
        enc.varint(self.range_hits);
        enc.varint(self.range_misses);
        enc.varint(self.range_evictions);
        enc.varint(self.range_entries);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(CacheStatsSnapshot {
            generation: dec.varint()?,
            capacity: dec.varint()?,
            response_hits: dec.varint()?,
            response_misses: dec.varint()?,
            response_evictions: dec.varint()?,
            response_entries: dec.varint()?,
            range_hits: dec.varint()?,
            range_misses: dec.varint()?,
            range_evictions: dec.varint()?,
            range_entries: dec.varint()?,
        })
    }
}

// ---------------------------------------------------------- update types --

impl WireCodec for InsertionSlot {
    fn encode_into(&self, enc: &mut Enc) {
        self.parent.encode_into(enc);
        enc.varint(self.gap_lo);
        enc.varint(self.gap_hi);
        enc.varint(self.next_block_id as u64);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(InsertionSlot {
            parent: Interval::decode_from(dec)?,
            gap_lo: dec.varint()?,
            gap_hi: dec.varint()?,
            next_block_id: dec.u32()?,
        })
    }
}

impl WireCodec for InsertDelta {
    fn encode_into(&self, enc: &mut Enc) {
        self.parent.encode_into(enc);
        enc.str(&self.visible_fragment);
        enc.usize(self.blocks.len());
        for b in &self.blocks {
            b.encode_into(enc);
        }
        enc.usize(self.dsi_entries.len());
        for (tag, iv) in &self.dsi_entries {
            enc.str(tag);
            iv.encode_into(enc);
        }
        enc.usize(self.block_entries.len());
        for (iv, id) in &self.block_entries {
            iv.encode_into(enc);
            enc.varint(*id as u64);
        }
        enc.usize(self.value_entries.len());
        for (attr, cipher, id) in &self.value_entries {
            enc.str(attr);
            enc.u128(*cipher);
            enc.varint(*id as u64);
        }
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let parent = Interval::decode_from(dec)?;
        let visible_fragment = dec.str()?;
        let n = dec.count(1 + 12 + 1 + TAG_BYTES)?;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(SealedBlock::decode_from(dec)?);
        }
        let n = dec.count(3)?;
        let mut dsi_entries = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = dec.str()?;
            dsi_entries.push((tag, Interval::decode_from(dec)?));
        }
        let n = dec.count(3)?;
        let mut block_entries = Vec::with_capacity(n);
        for _ in 0..n {
            let iv = Interval::decode_from(dec)?;
            block_entries.push((iv, dec.u32()?));
        }
        let n = dec.count(1 + 16 + 1)?;
        let mut value_entries = Vec::with_capacity(n);
        for _ in 0..n {
            let attr = dec.str()?;
            let cipher = dec.u128()?;
            value_entries.push((attr, cipher, dec.u32()?));
        }
        Ok(InsertDelta {
            parent,
            visible_fragment,
            blocks,
            dsi_entries,
            block_entries,
            value_entries,
        })
    }
}

impl WireCodec for DeleteOutcome {
    fn encode_into(&self, enc: &mut Enc) {
        enc.usize(self.deleted);
        enc.usize(self.skipped_in_block);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(DeleteOutcome {
            deleted: dec.usize()?,
            skipped_in_block: dec.usize()?,
        })
    }
}

// --------------------------------------------------------------- messages --

/// A [`CoreError`] in transit: category code + message. Lossless enough for
/// clients to react; the exact variant is preserved for known categories.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    pub code: u8,
    pub message: String,
}

impl WireError {
    pub fn from_core(e: &CoreError) -> WireError {
        let (code, message) = match e {
            CoreError::ConstraintSyntax(m) => (0, m.clone()),
            CoreError::Query(m) => (1, m.clone()),
            CoreError::EmptyDocument => (2, String::new()),
            CoreError::Opess(m) => (3, m.clone()),
            CoreError::Block(m) => (4, m.clone()),
            CoreError::Response(m) => (5, m.clone()),
            CoreError::Persist(m) => (6, m.clone()),
            CoreError::Codec(m) => (7, m.clone()),
            CoreError::Transport(m) => (8, m.clone()),
            CoreError::Tenant(m) => (9, m.clone()),
            // The retry-after hint rides inside the message as
            // "<ms>;<reason>" so the WireError frame shape (code + string)
            // stays byte-compatible with older peers, which surface it as
            // an unknown category with a readable message.
            CoreError::Unavailable {
                retry_after_ms,
                reason,
            } => (10, format!("{retry_after_ms};{reason}")),
        };
        WireError { code, message }
    }

    pub fn into_core(self) -> CoreError {
        match self.code {
            0 => CoreError::ConstraintSyntax(self.message),
            1 => CoreError::Query(self.message),
            2 => CoreError::EmptyDocument,
            3 => CoreError::Opess(self.message),
            4 => CoreError::Block(self.message),
            5 => CoreError::Response(self.message),
            6 => CoreError::Persist(self.message),
            7 => CoreError::Codec(self.message),
            8 => CoreError::Transport(self.message),
            9 => CoreError::Tenant(self.message),
            10 => {
                let (ms, reason) = match self.message.split_once(';') {
                    Some((ms, reason)) => (ms.parse().unwrap_or(0), reason.to_string()),
                    None => (0, self.message),
                };
                CoreError::Unavailable {
                    retry_after_ms: ms,
                    reason,
                }
            }
            other => CoreError::Transport(format!(
                "server error (unknown category {other}): {}",
                self.message
            )),
        }
    }
}

impl WireCodec for WireError {
    fn encode_into(&self, enc: &mut Enc) {
        enc.u8(self.code);
        enc.str(&self.message);
    }

    fn decode_from(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(WireError {
            code: dec.u8()?,
            message: dec.str()?,
        })
    }
}

/// A fully decoded frame: the message plus every framing field. `trace`
/// and `req_id` are 0 for frame versions that do not carry them; `db` is
/// empty for pre-v4 frames and for v4 frames addressed to the default db.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    pub msg: Message,
    pub trace: u64,
    pub req_id: u64,
    pub version: u8,
    pub db: String,
}

/// Every message that crosses the client↔server boundary. Requests are
/// `0x01..=0x7F`, responses `0x80..=0xFF`.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    // Requests.
    /// Evaluate a translated query (§5: pruned doc + blocks).
    Query(ServerQuery),
    /// Ship the whole hosted database (the naive baseline).
    NaiveQuery,
    /// Fetch one sealed block by id.
    FetchBlock(u32),
    /// Minimum/maximum ciphertext under an encrypted attribute key.
    ValueExtreme {
        attr_key: String,
        max: bool,
    },
    /// Intervals of nodes matching a translated query (update path).
    Locate(ServerQuery),
    /// Request an insertion slot under a parent interval.
    InsertionSlotReq(Interval),
    /// Apply a prepared insertion.
    ApplyInsert(InsertDelta),
    /// Delete all subtrees matching a translated query.
    DeleteWhere(ServerQuery),
    /// Request the server's cache counters.
    CacheStatsReq,
    /// Request the server's metrics-registry exposition.
    MetricsReq,
    /// Liveness probe (v3): answered with [`Message::Pong`] without touching
    /// the database, so the retry layer can tell a dead server from a slow
    /// one.
    Ping,
    /// A group of read-style requests submitted in one frame (v5). The
    /// server resolves the tenant, takes one admission decision, and runs
    /// one cache-probe pass for the whole group, answering with a
    /// [`Message::BatchAnswer`] carrying one reply per item in order.
    /// Decoding rejects nested batches and mutating items.
    Batch(Vec<Message>),
    /// Request the server's flight-recorder dump (v5): the ring of recent
    /// operational events as JSON lines. Older peers see an unknown tag
    /// and reply with a typed error.
    FlightReq,

    // Responses.
    Answer(ServerResponse),
    /// Prometheus-style text exposition of the server's metrics registry.
    MetricsText(String),
    Block(Option<SealedBlock>),
    Extreme(Option<(u128, u32)>),
    Intervals(Vec<Interval>),
    Slot(InsertionSlot),
    InsertOk,
    Deleted(DeleteOutcome),
    CacheStats(CacheStatsSnapshot),
    /// Reply to [`Message::Ping`] (v3).
    Pong,
    /// Load-shed reply (v3): the server is saturated (or could not admit
    /// the request within its deadline) and refuses the request instead of
    /// queueing it; the client should retry after the suggested delay.
    Busy {
        retry_after_ms: u32,
    },
    /// Reply to [`Message::Batch`] (v5): one response per batch item, in
    /// submission order. Items that failed dispatch are `Error` entries;
    /// the batch itself still succeeds.
    BatchAnswer(Vec<Message>),
    /// Reply to [`Message::FlightReq`] (v5): the flight recorder's events
    /// as JSON lines, oldest first.
    FlightDump(String),
    Error(WireError),
}

impl Message {
    /// The frame-header message type byte.
    pub fn msg_type(&self) -> u8 {
        match self {
            Message::Query(_) => 0x01,
            Message::NaiveQuery => 0x02,
            Message::FetchBlock(_) => 0x03,
            Message::ValueExtreme { .. } => 0x04,
            Message::Locate(_) => 0x05,
            Message::InsertionSlotReq(_) => 0x06,
            Message::ApplyInsert(_) => 0x07,
            Message::DeleteWhere(_) => 0x08,
            Message::CacheStatsReq => 0x09,
            Message::MetricsReq => 0x0A,
            Message::Ping => 0x0B,
            Message::Batch(_) => 0x0C,
            Message::FlightReq => 0x0D,
            Message::Answer(_) => 0x81,
            Message::MetricsText(_) => 0x89,
            Message::Block(_) => 0x82,
            Message::Extreme(_) => 0x83,
            Message::Intervals(_) => 0x84,
            Message::Slot(_) => 0x85,
            Message::InsertOk => 0x86,
            Message::Deleted(_) => 0x87,
            Message::CacheStats(_) => 0x88,
            Message::Pong => 0x8A,
            Message::Busy { .. } => 0x8B,
            Message::BatchAnswer(_) => 0x8C,
            Message::FlightDump(_) => 0x8D,
            Message::Error(_) => 0xFF,
        }
    }

    /// True for client→server messages.
    pub fn is_request(&self) -> bool {
        self.msg_type() < 0x80
    }

    /// True for requests that mutate server state.
    pub fn is_mutation(&self) -> bool {
        matches!(self, Message::ApplyInsert(_) | Message::DeleteWhere(_))
    }

    fn encode_payload(&self, enc: &mut Enc) {
        match self {
            Message::Query(q) | Message::Locate(q) | Message::DeleteWhere(q) => q.encode_into(enc),
            Message::NaiveQuery | Message::InsertOk | Message::CacheStatsReq => {}
            Message::MetricsReq | Message::Ping | Message::Pong | Message::FlightReq => {}
            Message::Busy { retry_after_ms } => enc.varint(*retry_after_ms as u64),
            Message::MetricsText(text) | Message::FlightDump(text) => enc.str(text),
            Message::FetchBlock(id) => enc.varint(*id as u64),
            Message::ValueExtreme { attr_key, max } => {
                enc.str(attr_key);
                enc.bool(*max);
            }
            Message::InsertionSlotReq(iv) => iv.encode_into(enc),
            Message::ApplyInsert(delta) => delta.encode_into(enc),
            Message::Answer(resp) => resp.encode_into(enc),
            Message::Block(opt) => match opt {
                None => enc.u8(0),
                Some(b) => {
                    enc.u8(1);
                    b.encode_into(enc);
                }
            },
            Message::Extreme(opt) => match opt {
                None => enc.u8(0),
                Some((cipher, id)) => {
                    enc.u8(1);
                    enc.u128(*cipher);
                    enc.varint(*id as u64);
                }
            },
            Message::Intervals(ivs) => {
                enc.usize(ivs.len());
                for iv in ivs {
                    iv.encode_into(enc);
                }
            }
            Message::Slot(slot) => slot.encode_into(enc),
            Message::Deleted(outcome) => outcome.encode_into(enc),
            Message::CacheStats(stats) => stats.encode_into(enc),
            Message::Batch(items) | Message::BatchAnswer(items) => {
                enc.usize(items.len());
                for item in items {
                    enc.u8(item.msg_type());
                    let mut sub = Enc::new();
                    item.encode_payload(&mut sub);
                    enc.bytes(&sub.into_bytes());
                }
            }
            Message::Error(err) => err.encode_into(enc),
        }
    }

    /// Decodes the items of a `Batch`/`BatchAnswer` payload: a count, then
    /// per item a message-type byte and a length-prefixed sub-payload.
    /// Nested batches are rejected flat (no recursion), `Batch` items must
    /// be non-mutating requests, `BatchAnswer` items must be responses.
    fn decode_batch_items(
        version: u8,
        dec: &mut Dec<'_>,
        requests: bool,
    ) -> Result<Vec<Message>, CodecError> {
        let n = dec.count(2)?;
        if n == 0 {
            return Err(CodecError::Invalid("empty batch"));
        }
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = dec.u8()?;
            if tag == 0x0C || tag == 0x8C {
                return Err(CodecError::Invalid("nested batch"));
            }
            let raw = dec.bytes()?;
            let item = Message::decode_payload_bytes(version, tag, raw)?;
            if requests {
                if !item.is_request() {
                    return Err(CodecError::Invalid("batch item is not a request"));
                }
                if item.is_mutation() {
                    return Err(CodecError::Invalid("mutation inside batch"));
                }
            } else if item.is_request() {
                return Err(CodecError::Invalid("batch answer item is not a response"));
            }
            items.push(item);
        }
        Ok(items)
    }

    fn decode_payload(version: u8, msg_type: u8, dec: &mut Dec<'_>) -> Result<Message, CodecError> {
        match msg_type {
            0x01 => Ok(Message::Query(ServerQuery::decode_from(dec)?)),
            0x02 => Ok(Message::NaiveQuery),
            0x03 => Ok(Message::FetchBlock(dec.u32()?)),
            0x04 => Ok(Message::ValueExtreme {
                attr_key: dec.str()?,
                max: dec.bool()?,
            }),
            0x05 => Ok(Message::Locate(ServerQuery::decode_from(dec)?)),
            0x06 => Ok(Message::InsertionSlotReq(Interval::decode_from(dec)?)),
            0x07 => Ok(Message::ApplyInsert(InsertDelta::decode_from(dec)?)),
            0x08 => Ok(Message::DeleteWhere(ServerQuery::decode_from(dec)?)),
            0x09 => Ok(Message::CacheStatsReq),
            0x0A => Ok(Message::MetricsReq),
            0x0B => Ok(Message::Ping),
            0x0C if version >= PROTOCOL_VERSION => Ok(Message::Batch(Message::decode_batch_items(
                version, dec, true,
            )?)),
            0x0D if version >= PROTOCOL_VERSION => Ok(Message::FlightReq),
            0x8C if version >= PROTOCOL_VERSION => Ok(Message::BatchAnswer(
                Message::decode_batch_items(version, dec, false)?,
            )),
            0x8D if version >= PROTOCOL_VERSION => Ok(Message::FlightDump(dec.str()?)),
            0x8A => Ok(Message::Pong),
            0x8B => Ok(Message::Busy {
                retry_after_ms: dec.u32()?,
            }),
            0x81 if version == LEGACY_PROTOCOL_VERSION => {
                Ok(Message::Answer(ServerResponse::decode_legacy_from(dec)?))
            }
            0x81 => Ok(Message::Answer(ServerResponse::decode_from(dec)?)),
            0x89 => Ok(Message::MetricsText(dec.str()?)),
            0x82 => match dec.u8()? {
                0 => Ok(Message::Block(None)),
                1 => Ok(Message::Block(Some(SealedBlock::decode_from(dec)?))),
                tag => Err(CodecError::BadTag {
                    context: "block option",
                    tag,
                }),
            },
            0x83 => match dec.u8()? {
                0 => Ok(Message::Extreme(None)),
                1 => {
                    let cipher = dec.u128()?;
                    Ok(Message::Extreme(Some((cipher, dec.u32()?))))
                }
                tag => Err(CodecError::BadTag {
                    context: "extreme option",
                    tag,
                }),
            },
            0x84 => {
                let n = dec.count(2)?;
                let mut ivs = Vec::with_capacity(n);
                for _ in 0..n {
                    ivs.push(Interval::decode_from(dec)?);
                }
                Ok(Message::Intervals(ivs))
            }
            0x85 => Ok(Message::Slot(InsertionSlot::decode_from(dec)?)),
            0x86 => Ok(Message::InsertOk),
            0x87 => Ok(Message::Deleted(DeleteOutcome::decode_from(dec)?)),
            0x88 => Ok(Message::CacheStats(CacheStatsSnapshot::decode_from(dec)?)),
            0xFF => Ok(Message::Error(WireError::decode_from(dec)?)),
            tag => Err(CodecError::BadTag {
                context: "message",
                tag,
            }),
        }
    }

    /// Encodes the message as a complete current-version frame with no
    /// trace id.
    pub fn encode_frame(&self) -> Vec<u8> {
        self.encode_frame_v(PROTOCOL_VERSION, 0)
    }

    /// Encodes a current-version frame carrying `trace` (0 = untraced).
    pub fn encode_frame_traced(&self, trace: u64) -> Vec<u8> {
        self.encode_frame_v(PROTOCOL_VERSION, trace)
    }

    /// Encodes a frame in an explicit protocol version — v1/v2 for replies
    /// to legacy peers (fewer framing fields, legacy [`ServerResponse`]
    /// layout for v1) — with no request id.
    pub fn encode_frame_v(&self, version: u8, trace: u64) -> Vec<u8> {
        self.encode_frame_req(version, trace, 0)
    }

    /// Encodes a frame in an explicit protocol version carrying `trace`
    /// (0 = untraced) and `req_id` (0 = unassigned; ignored below v3),
    /// addressed to the default db. The v3+ checksum covers every byte of
    /// the frame except the checksum field itself.
    pub fn encode_frame_req(&self, version: u8, trace: u64, req_id: u64) -> Vec<u8> {
        // An empty db id always fits, so this cannot fail.
        self.encode_frame_db(version, trace, req_id, "")
            .expect("empty db id is always encodable")
    }

    /// Encodes a frame in an explicit protocol version, addressed to the
    /// named db (empty = default db; ignored below v4). Fails with
    /// [`CodecError::DbId`] if `db` exceeds [`MAX_DB_ID_LEN`] bytes.
    pub fn encode_frame_db(
        &self,
        version: u8,
        trace: u64,
        req_id: u64,
        db: &str,
    ) -> Result<Vec<u8>, CodecError> {
        if db.len() > MAX_DB_ID_LEN {
            return Err(CodecError::DbId("db id exceeds maximum length"));
        }
        let mut enc = Enc::new();
        self.encode_payload_v(version, &mut enc);
        let payload = enc.into_bytes();
        let mut frame =
            Vec::with_capacity(FRAME_HEADER_LEN + frame_extra_len(version) + payload.len());
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.push(version);
        frame.push(self.msg_type());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        if version >= V2_PROTOCOL_VERSION {
            frame.extend_from_slice(&trace.to_le_bytes());
        }
        if version >= V3_PROTOCOL_VERSION {
            frame.extend_from_slice(&req_id.to_le_bytes());
            let crc_pos = frame.len();
            frame.extend_from_slice(&[0u8; CHECKSUM_FIELD_LEN]);
            if version >= V4_PROTOCOL_VERSION {
                frame.push(db.len() as u8);
                frame.extend_from_slice(db.as_bytes());
                frame.resize(crc_pos + CHECKSUM_FIELD_LEN + DB_ID_FIELD_LEN, 0);
            }
            frame.extend_from_slice(&payload);
            let crc = crc32(&[&frame[..crc_pos], &frame[crc_pos + CHECKSUM_FIELD_LEN..]]);
            frame[crc_pos..crc_pos + CHECKSUM_FIELD_LEN].copy_from_slice(&crc.to_le_bytes());
        } else {
            frame.extend_from_slice(&payload);
        }
        Ok(frame)
    }

    fn encode_payload_v(&self, version: u8, enc: &mut Enc) {
        if version == LEGACY_PROTOCOL_VERSION {
            if let Message::Answer(resp) = self {
                resp.encode_legacy_into(enc);
                return;
            }
        }
        self.encode_payload(enc);
    }

    /// Exact current-version frame length without materializing the frame
    /// twice.
    pub fn frame_len(&self) -> usize {
        let mut enc = Enc::new();
        self.encode_payload(&mut enc);
        FRAME_HEADER_LEN + FRAME_EXTRA_LEN + enc.into_bytes().len()
    }

    /// Parses the fixed frame header, returning
    /// `(version, msg_type, payload_len)`. For v2+ frames,
    /// [`frame_extra_len`] framing bytes follow the header before
    /// `payload_len` payload bytes. `header` must be exactly
    /// [`FRAME_HEADER_LEN`] bytes.
    pub fn parse_header(header: &[u8; FRAME_HEADER_LEN]) -> Result<(u8, u8, usize), CodecError> {
        if header[0..2] != FRAME_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = header[2];
        if !(LEGACY_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
            return Err(CodecError::BadVersion(version));
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::Oversize {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        Ok((version, header[3], len))
    }

    /// Decodes one complete frame from a buffer; the buffer must contain
    /// exactly one frame. Discards the trace and request ids.
    pub fn decode_frame(bytes: &[u8]) -> Result<Message, CodecError> {
        Self::decode_frame_ext(bytes).map(|d| d.msg)
    }

    /// Decodes one complete frame, also returning its trace id (0 for v1 or
    /// untraced frames) and protocol version — servers reply in the
    /// request's version. Discards the request id; servers that honor the
    /// at-most-once replay table use [`Message::decode_frame_ext`].
    pub fn decode_frame_full(bytes: &[u8]) -> Result<(Message, u64, u8), CodecError> {
        Self::decode_frame_ext(bytes).map(|d| (d.msg, d.trace, d.version))
    }

    /// Decodes one complete frame with all framing fields: message, trace
    /// id, request id (0 for pre-v3 frames), and protocol version. For v3
    /// frames the checksum is verified before the payload is interpreted.
    pub fn decode_frame_ext(bytes: &[u8]) -> Result<DecodedFrame, CodecError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(CodecError::Truncated);
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&bytes[..FRAME_HEADER_LEN]);
        let (version, msg_type, len) = Self::parse_header(&header)?;
        let mut rest = &bytes[FRAME_HEADER_LEN..];
        if rest.len() < frame_extra_len(version) {
            return Err(CodecError::Truncated);
        }
        let mut trace = 0u64;
        let mut req_id = 0u64;
        if version >= V2_PROTOCOL_VERSION {
            let mut raw = [0u8; TRACE_FIELD_LEN];
            raw.copy_from_slice(&rest[..TRACE_FIELD_LEN]);
            trace = u64::from_le_bytes(raw);
            rest = &rest[TRACE_FIELD_LEN..];
        }
        let mut stored_crc = None;
        if version >= V3_PROTOCOL_VERSION {
            let mut raw = [0u8; REQ_ID_FIELD_LEN];
            raw.copy_from_slice(&rest[..REQ_ID_FIELD_LEN]);
            req_id = u64::from_le_bytes(raw);
            rest = &rest[REQ_ID_FIELD_LEN..];
            let mut raw = [0u8; CHECKSUM_FIELD_LEN];
            raw.copy_from_slice(&rest[..CHECKSUM_FIELD_LEN]);
            stored_crc = Some(u32::from_le_bytes(raw));
            rest = &rest[CHECKSUM_FIELD_LEN..];
        }
        let mut db_raw: &[u8] = &[];
        if version >= V4_PROTOCOL_VERSION {
            db_raw = &rest[..DB_ID_FIELD_LEN];
            rest = &rest[DB_ID_FIELD_LEN..];
        }
        if rest.len() < len {
            return Err(CodecError::Truncated);
        }
        if rest.len() > len {
            return Err(CodecError::TrailingBytes(rest.len() - len));
        }
        if let Some(stored) = stored_crc {
            let crc_pos = FRAME_HEADER_LEN + TRACE_FIELD_LEN + REQ_ID_FIELD_LEN;
            let computed = crc32(&[&bytes[..crc_pos], &bytes[crc_pos + CHECKSUM_FIELD_LEN..]]);
            if stored != computed {
                return Err(CodecError::Checksum { stored, computed });
            }
        }
        // Validate the db id only after the checksum: a corrupted frame
        // surfaces as `Checksum`, a well-formed frame naming a bad db as the
        // typed `DbId` error — never a panic.
        let mut db = String::new();
        if !db_raw.is_empty() {
            let db_len = db_raw[0] as usize;
            if db_len > MAX_DB_ID_LEN {
                return Err(CodecError::DbId("db id exceeds maximum length"));
            }
            if db_raw[1 + db_len..].iter().any(|&b| b != 0) {
                return Err(CodecError::DbId("nonzero padding after db id"));
            }
            db = std::str::from_utf8(&db_raw[1..1 + db_len])
                .map_err(|_| CodecError::DbId("db id is not valid UTF-8"))?
                .to_string();
        }
        let msg = Self::decode_payload_bytes(version, msg_type, rest)?;
        Ok(DecodedFrame {
            msg,
            trace,
            req_id,
            version,
            db,
        })
    }

    /// Decodes a bare payload (already stripped of framing) for a given
    /// protocol version, requiring full consumption.
    pub fn decode_payload_bytes(
        version: u8,
        msg_type: u8,
        payload: &[u8],
    ) -> Result<Message, CodecError> {
        let mut dec = Dec::new(payload);
        let msg = Self::decode_payload(version, msg_type, &mut dec)?;
        dec.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> ServerQuery {
        ServerQuery {
            steps: vec![
                SStep {
                    axis: SAxis::Descendant,
                    tags: vec!["patient".into(), "XTY0POA".into()],
                    preds: vec![SPred::Value {
                        path: vec![SStep {
                            axis: SAxis::Attribute,
                            tags: vec!["@age".into()],
                            preds: vec![],
                        }],
                        range: Some((
                            "X95SER".into(),
                            ValueRange {
                                lo: 7,
                                hi: 1 << 100,
                            },
                        )),
                        plain: Some((CmpOp::Ge, Literal::Number(42.5))),
                    }],
                },
                SStep {
                    axis: SAxis::Child,
                    tags: vec![],
                    preds: vec![SPred::Exists(vec![SStep {
                        axis: SAxis::Child,
                        tags: vec!["name".into()],
                        preds: vec![],
                    }])],
                },
            ],
            anchor: 1,
        }
    }

    #[test]
    fn query_roundtrip() {
        let q = sample_query();
        assert_eq!(ServerQuery::decode(&q.encode()).unwrap(), q);
    }

    fn sample_span() -> SpanRec {
        SpanRec {
            trace: 0xDEAD_BEEF,
            id: 2,
            parent: 1,
            name: "server.sjoin".into(),
            side: Side::Server,
            start_ns: 1_000,
            dur_ns: 250_000,
        }
    }

    #[test]
    fn response_roundtrip() {
        let r = ServerResponse {
            pruned_xml: "<r><a/></r>".into(),
            blocks: vec![std::sync::Arc::new(SealedBlock {
                id: 3,
                nonce: [9; 12],
                ciphertext: vec![1, 2, 3, 4],
                tag: [7; TAG_BYTES],
            })],
            translate_time: Duration::from_micros(12),
            process_time: Duration::from_millis(3),
            served_from_cache: true,
            spans: vec![sample_span()],
        };
        assert_eq!(ServerResponse::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn span_roundtrip() {
        let s = sample_span();
        assert_eq!(SpanRec::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn legacy_v1_answer_roundtrip_drops_telemetry_fields() {
        let resp = ServerResponse {
            pruned_xml: "<r/>".into(),
            blocks: vec![],
            translate_time: Duration::from_micros(7),
            process_time: Duration::from_micros(9),
            served_from_cache: true,
            spans: vec![sample_span()],
        };
        let frame = Message::Answer(resp.clone()).encode_frame_v(LEGACY_PROTOCOL_VERSION, 0);
        assert_eq!(frame[2], LEGACY_PROTOCOL_VERSION);
        let (msg, trace, version) = Message::decode_frame_full(&frame).unwrap();
        assert_eq!(trace, 0);
        assert_eq!(version, LEGACY_PROTOCOL_VERSION);
        let Message::Answer(back) = msg else {
            panic!("not an answer");
        };
        // Core fields survive; telemetry fields take their v1 defaults.
        assert_eq!(back.pruned_xml, resp.pruned_xml);
        assert_eq!(back.translate_time, resp.translate_time);
        assert_eq!(back.process_time, resp.process_time);
        assert!(!back.served_from_cache);
        assert!(back.spans.is_empty());
    }

    #[test]
    fn v1_request_frames_still_decode() {
        // A legacy peer's request (no trace field) must still be served.
        for msg in [
            Message::Query(sample_query()),
            Message::NaiveQuery,
            Message::CacheStatsReq,
        ] {
            let frame = msg.encode_frame_v(LEGACY_PROTOCOL_VERSION, 0);
            assert_eq!(
                frame.len(),
                msg.frame_len() - FRAME_EXTRA_LEN,
                "v1 frame must not carry the trace/req-id/checksum fields"
            );
            let (back, trace, version) = Message::decode_frame_full(&frame).unwrap();
            assert_eq!(back, msg);
            assert_eq!(trace, 0, "v1 trace id defaults to none");
            assert_eq!(version, LEGACY_PROTOCOL_VERSION);
        }
    }

    #[test]
    fn trace_id_rides_the_frame_header() {
        let msg = Message::Query(sample_query());
        let frame = msg.encode_frame_traced(0x0123_4567_89AB_CDEF);
        assert_eq!(frame.len(), msg.frame_len());
        let (back, trace, version) = Message::decode_frame_full(&frame).unwrap();
        assert_eq!(back, msg);
        assert_eq!(trace, 0x0123_4567_89AB_CDEF);
        assert_eq!(version, PROTOCOL_VERSION);
        // The trace id is framing, not payload: same payload length either
        // way, so identical queries keep identical byte counts.
        assert_eq!(frame.len(), msg.encode_frame().len());
    }

    #[test]
    fn frame_roundtrip_every_message() {
        let messages = vec![
            Message::Query(sample_query()),
            Message::NaiveQuery,
            Message::FetchBlock(77),
            Message::ValueExtreme {
                attr_key: "Xk".into(),
                max: true,
            },
            Message::Locate(sample_query()),
            Message::InsertionSlotReq(Interval { lo: 4, hi: 900 }),
            Message::ApplyInsert(InsertDelta {
                parent: Interval { lo: 1, hi: 10_000 },
                visible_fragment: "<x _exq_iv=\"2,9\"/>".into(),
                blocks: vec![SealedBlock {
                    id: 0,
                    nonce: [1; 12],
                    ciphertext: vec![0xAB; 20],
                    tag: [2; TAG_BYTES],
                }],
                dsi_entries: vec![("Xtag".into(), Interval { lo: 2, hi: 9 })],
                block_entries: vec![(Interval { lo: 2, hi: 9 }, 0)],
                value_entries: vec![("Xattr".into(), 123456789u128, 0)],
            }),
            Message::DeleteWhere(sample_query()),
            Message::Answer(ServerResponse {
                pruned_xml: String::new(),
                blocks: vec![],
                translate_time: Duration::ZERO,
                process_time: Duration::ZERO,
                served_from_cache: false,
                spans: vec![],
            }),
            Message::Answer(ServerResponse {
                pruned_xml: "<r/>".into(),
                blocks: vec![],
                translate_time: Duration::from_micros(1),
                process_time: Duration::from_micros(2),
                served_from_cache: true,
                spans: vec![sample_span()],
            }),
            Message::MetricsReq,
            Message::MetricsText("# TYPE exq_queries_total counter\n".into()),
            Message::Block(None),
            Message::Block(Some(SealedBlock {
                id: 1,
                nonce: [0; 12],
                ciphertext: vec![],
                tag: [0; TAG_BYTES],
            })),
            Message::Extreme(None),
            Message::Extreme(Some((u128::MAX, 42))),
            Message::Intervals(vec![Interval { lo: 1, hi: 2 }, Interval { lo: 5, hi: 99 }]),
            Message::Slot(InsertionSlot {
                parent: Interval { lo: 1, hi: 100 },
                gap_lo: 50,
                gap_hi: 100,
                next_block_id: 6,
            }),
            Message::InsertOk,
            Message::Deleted(DeleteOutcome {
                deleted: 3,
                skipped_in_block: 1,
            }),
            Message::CacheStatsReq,
            Message::CacheStats(CacheStatsSnapshot {
                generation: 7,
                capacity: 1024,
                response_hits: 10,
                response_misses: 3,
                response_evictions: 1,
                response_entries: 2,
                range_hits: 20,
                range_misses: 4,
                range_evictions: 0,
                range_entries: 4,
            }),
            Message::Ping,
            Message::Pong,
            Message::Busy { retry_after_ms: 25 },
            Message::Error(WireError::from_core(&CoreError::Query("nope".into()))),
        ];
        for msg in messages {
            let frame = msg.encode_frame();
            assert_eq!(frame.len(), msg.frame_len(), "frame_len mismatch: {msg:?}");
            let back = Message::decode_frame(&frame).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn unavailable_round_trips_with_retry_hint() {
        let core = CoreError::Unavailable {
            retry_after_ms: 1500,
            reason: "degraded: wal append failed".into(),
        };
        let wire = WireError::from_core(&core);
        assert_eq!(wire.code, 10);
        assert_eq!(wire.message, "1500;degraded: wal append failed");
        assert_eq!(wire.clone().into_core(), core);

        // A malformed hint degrades gracefully instead of erroring.
        let mangled = WireError {
            code: 10,
            message: "storage gone".into(),
        };
        assert_eq!(
            mangled.into_core(),
            CoreError::Unavailable {
                retry_after_ms: 0,
                reason: "storage gone".into()
            }
        );
    }

    #[test]
    fn truncated_frames_error() {
        let frame = Message::Query(sample_query()).encode_frame();
        for cut in 0..frame.len() {
            let err = Message::decode_frame(&frame[..cut]);
            assert!(err.is_err(), "prefix of len {cut} decoded");
        }
    }

    #[test]
    fn bad_magic_version_and_type() {
        let mut frame = Message::NaiveQuery.encode_frame();
        frame[0] = b'Z';
        assert_eq!(Message::decode_frame(&frame), Err(CodecError::BadMagic));

        let mut frame = Message::NaiveQuery.encode_frame();
        frame[2] = 99;
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::BadVersion(99))
        );

        // In a v3+ frame a flipped type byte fails the checksum before the
        // tag is ever interpreted.
        let mut frame = Message::NaiveQuery.encode_frame();
        frame[3] = 0x60;
        assert!(matches!(
            Message::decode_frame(&frame),
            Err(CodecError::Checksum { .. })
        ));
        // A v2 frame has no checksum, so the unknown tag itself is the
        // error.
        let mut frame = Message::NaiveQuery.encode_frame_v(V2_PROTOCOL_VERSION, 0);
        frame[3] = 0x60;
        assert!(matches!(
            Message::decode_frame(&frame),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn oversize_length_prefix_rejected_before_allocation() {
        let mut frame = Message::NaiveQuery.encode_frame();
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode_frame(&frame),
            Err(CodecError::Oversize { .. })
        ));
    }

    #[test]
    fn count_bomb_rejected() {
        // An Intervals frame claiming 2^40 entries in a 10-byte payload.
        let mut enc = Enc::new();
        enc.varint(1u64 << 40);
        let payload = enc.into_bytes();
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.push(V2_PROTOCOL_VERSION);
        frame.push(0x84);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes()); // v2 trace field
        frame.extend_from_slice(&payload);
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::CountOverflow)
        );
    }

    #[test]
    fn invalid_interval_rejected() {
        let mut enc = Enc::new();
        enc.varint(9);
        enc.varint(4); // hi < lo
        let payload = enc.into_bytes();
        assert_eq!(
            Interval::decode(&payload),
            Err(CodecError::Invalid("interval lo >= hi"))
        );
    }

    #[test]
    fn anchor_out_of_range_rejected() {
        let mut q = sample_query();
        q.anchor = 7;
        let bytes = q.encode();
        assert_eq!(
            ServerQuery::decode(&bytes),
            Err(CodecError::Invalid("anchor out of range"))
        );
    }

    #[test]
    fn depth_bomb_rejected() {
        // Nest Exists predicates past the cap.
        let mut q = ServerQuery {
            steps: vec![SStep {
                axis: SAxis::Child,
                tags: vec![],
                preds: vec![],
            }],
            anchor: 0,
        };
        for _ in 0..(MAX_PATTERN_DEPTH + 2) {
            q = ServerQuery {
                steps: vec![SStep {
                    axis: SAxis::Child,
                    tags: vec![],
                    preds: vec![SPred::Exists(std::mem::take(&mut q.steps))],
                }],
                anchor: 0,
            };
        }
        assert_eq!(
            ServerQuery::decode(&q.encode()),
            Err(CodecError::DepthExceeded)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::InsertOk.encode_frame();
        bytes.push(0);
        assert!(matches!(
            Message::decode_frame(&bytes),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE 802.3 check value.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn request_id_rides_the_frame() {
        let msg = Message::Query(sample_query());
        let frame = msg.encode_frame_req(PROTOCOL_VERSION, 7, 0xFACE_FEED_0123_4567);
        assert_eq!(frame.len(), msg.frame_len());
        let d = Message::decode_frame_ext(&frame).unwrap();
        assert_eq!(d.msg, msg);
        assert_eq!(d.trace, 7);
        assert_eq!(d.req_id, 0xFACE_FEED_0123_4567);
        assert_eq!(d.version, PROTOCOL_VERSION);
        // Framing fields don't change the payload length, so identical
        // queries keep identical byte counts regardless of ids.
        assert_eq!(frame.len(), msg.encode_frame().len());
    }

    #[test]
    fn v2_frames_still_decode() {
        // A v2 peer's request (trace field, no req id / checksum) must
        // still be served, and its trace id must survive.
        for msg in [
            Message::Query(sample_query()),
            Message::NaiveQuery,
            Message::MetricsReq,
        ] {
            let frame = msg.encode_frame_v(V2_PROTOCOL_VERSION, 0xABCD);
            assert_eq!(
                frame.len(),
                msg.frame_len() - REQ_ID_FIELD_LEN - CHECKSUM_FIELD_LEN - DB_ID_FIELD_LEN,
                "v2 frame must not carry the req-id/checksum/db-id fields"
            );
            let d = Message::decode_frame_ext(&frame).unwrap();
            assert_eq!(d.msg, msg);
            assert_eq!(d.trace, 0xABCD);
            assert_eq!(d.req_id, 0);
            assert_eq!(d.version, V2_PROTOCOL_VERSION);
            assert_eq!(d.db, "");
        }
    }

    #[test]
    fn v3_frames_still_decode() {
        // A v3 peer's request (req id + checksum, no db field) must still
        // be served, and both ids must survive.
        for msg in [
            Message::Query(sample_query()),
            Message::NaiveQuery,
            Message::Ping,
        ] {
            let frame = msg.encode_frame_req(V3_PROTOCOL_VERSION, 0xABCD, 77);
            assert_eq!(
                frame.len(),
                msg.frame_len() - DB_ID_FIELD_LEN,
                "v3 frame must not carry the db-id field"
            );
            let d = Message::decode_frame_ext(&frame).unwrap();
            assert_eq!(d.msg, msg);
            assert_eq!(d.trace, 0xABCD);
            assert_eq!(d.req_id, 77);
            assert_eq!(d.version, V3_PROTOCOL_VERSION);
            assert_eq!(d.db, "");
        }
    }

    #[test]
    fn db_id_rides_the_frame() {
        let msg = Message::Query(sample_query());
        let frame = msg
            .encode_frame_db(PROTOCOL_VERSION, 7, 42, "hospital-east")
            .unwrap();
        assert_eq!(frame.len(), msg.frame_len());
        let d = Message::decode_frame_ext(&frame).unwrap();
        assert_eq!(d.msg, msg);
        assert_eq!(d.trace, 7);
        assert_eq!(d.req_id, 42);
        assert_eq!(d.db, "hospital-east");
        // The db id is framing, not payload: frames to different dbs keep
        // identical byte counts.
        assert_eq!(frame.len(), msg.encode_frame().len());
        // A max-length id still fits the fixed-width field.
        let long = "d".repeat(MAX_DB_ID_LEN);
        let frame = msg.encode_frame_db(PROTOCOL_VERSION, 0, 0, &long).unwrap();
        assert_eq!(Message::decode_frame_ext(&frame).unwrap().db, long);
    }

    #[test]
    fn oversized_db_id_rejected_on_encode() {
        let too_long = "d".repeat(MAX_DB_ID_LEN + 1);
        assert_eq!(
            Message::Ping.encode_frame_db(PROTOCOL_VERSION, 0, 0, &too_long),
            Err(CodecError::DbId("db id exceeds maximum length"))
        );
    }

    #[test]
    fn malformed_db_id_field_is_typed() {
        let db_pos = FRAME_HEADER_LEN + TRACE_FIELD_LEN + REQ_ID_FIELD_LEN + CHECKSUM_FIELD_LEN;
        let refresh_crc = |frame: &mut [u8]| {
            let crc_pos = FRAME_HEADER_LEN + TRACE_FIELD_LEN + REQ_ID_FIELD_LEN;
            let crc = crc32(&[&frame[..crc_pos], &frame[crc_pos + CHECKSUM_FIELD_LEN..]]);
            frame[crc_pos..crc_pos + CHECKSUM_FIELD_LEN].copy_from_slice(&crc.to_le_bytes());
        };

        // Oversized length byte, valid checksum: the typed DbId error.
        let mut frame = Message::Ping.encode_frame();
        frame[db_pos] = MAX_DB_ID_LEN as u8 + 1;
        refresh_crc(&mut frame);
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::DbId("db id exceeds maximum length"))
        );

        // Nonzero padding past the declared length.
        let mut frame = Message::Ping
            .encode_frame_db(PROTOCOL_VERSION, 0, 0, "a")
            .unwrap();
        frame[db_pos + 10] = 0xFF;
        refresh_crc(&mut frame);
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::DbId("nonzero padding after db id"))
        );

        // Non-UTF-8 name bytes.
        let mut frame = Message::Ping
            .encode_frame_db(PROTOCOL_VERSION, 0, 0, "ab")
            .unwrap();
        frame[db_pos + 1] = 0xFF;
        refresh_crc(&mut frame);
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::DbId("db id is not valid UTF-8"))
        );

        // Without a refreshed checksum, corruption in the db field is a
        // Checksum error, never a panic or a silently rerouted request.
        let mut frame = Message::Ping.encode_frame();
        frame[db_pos] ^= 0x01;
        assert!(matches!(
            Message::decode_frame(&frame),
            Err(CodecError::Checksum { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The whole point of the v3 checksum: no corrupted frame may decode
        // to a (possibly different) message. Flip every bit of every byte
        // of a realistic frame and demand a typed error each time.
        let msg = Message::Query(sample_query());
        let frame = msg.encode_frame_req(PROTOCOL_VERSION, 3, 42);
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    Message::decode_frame(&bad).is_err(),
                    "flip of byte {i} bit {bit} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn checksum_mismatch_is_typed() {
        let mut frame = Message::Ping.encode_frame();
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        // Ping has no payload, so `last` lands in the db-id padding, which
        // the checksum covers.
        assert!(matches!(
            Message::decode_frame(&frame),
            Err(CodecError::Checksum { .. })
        ));
    }

    #[test]
    fn v4_frame_still_carries_db_field() {
        // v5 changed only the message set; the v4 framing layout (including
        // the fixed-width db-id field) must be byte-identical to before.
        assert_eq!(frame_extra_len(V4_PROTOCOL_VERSION), FRAME_EXTRA_LEN);
        assert_eq!(frame_extra_len(PROTOCOL_VERSION), FRAME_EXTRA_LEN);
        let frame = Message::Ping
            .encode_frame_db(V4_PROTOCOL_VERSION, 7, 9, "hospital-east")
            .unwrap();
        let d = Message::decode_frame_ext(&frame).unwrap();
        assert_eq!(d.version, V4_PROTOCOL_VERSION);
        assert_eq!(d.db, "hospital-east");
        assert_eq!(d.trace, 7);
        assert_eq!(d.req_id, 9);
    }

    #[test]
    fn batch_frame_roundtrips() {
        let msg = Message::Batch(vec![
            Message::Query(sample_query()),
            Message::NaiveQuery,
            Message::FetchBlock(7),
            Message::CacheStatsReq,
        ]);
        let frame = msg.encode_frame_req(PROTOCOL_VERSION, 11, 42);
        let d = Message::decode_frame_ext(&frame).unwrap();
        assert_eq!(d.msg, msg);
        assert_eq!(d.trace, 11);
        assert_eq!(d.req_id, 42);

        let reply = Message::BatchAnswer(vec![
            Message::Pong,
            Message::Block(None),
            Message::Error(WireError::from_core(&CoreError::Query("nope".into()))),
        ]);
        let frame = reply.encode_frame_req(PROTOCOL_VERSION, 11, 42);
        assert_eq!(Message::decode_frame(&frame).unwrap(), reply);
    }

    #[test]
    fn batch_rejected_below_v5() {
        // A v4 peer never sends 0x0C; if one does, it is an unknown tag in
        // that dialect, not a silently accepted extension.
        let msg = Message::Batch(vec![Message::Ping]);
        let frame = msg.encode_frame_db(V4_PROTOCOL_VERSION, 0, 0, "").unwrap();
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::BadTag {
                context: "message",
                tag: 0x0C
            })
        );
    }

    #[test]
    fn flight_frames_roundtrip_and_are_rejected_below_v5() {
        let frame = Message::FlightReq.encode_frame_req(PROTOCOL_VERSION, 5, 9);
        let d = Message::decode_frame_ext(&frame).unwrap();
        assert_eq!(d.msg, Message::FlightReq);
        assert_eq!((d.trace, d.req_id), (5, 9));

        let dump = "{\"seq\":0,\"event\":\"shed\",\"db\":\"x\"}\n".to_string();
        let reply = Message::FlightDump(dump.clone());
        let frame = reply.encode_frame_req(PROTOCOL_VERSION, 5, 9);
        assert_eq!(Message::decode_frame(&frame).unwrap(), reply);

        // Older dialects treat 0x0D/0x8D as unknown tags, never as silent
        // extensions.
        let frame = Message::FlightReq
            .encode_frame_db(V4_PROTOCOL_VERSION, 0, 0, "")
            .unwrap();
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::BadTag {
                context: "message",
                tag: 0x0D
            })
        );
        let frame = Message::FlightDump(dump)
            .encode_frame_db(V4_PROTOCOL_VERSION, 0, 0, "")
            .unwrap();
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::BadTag {
                context: "message",
                tag: 0x8D
            })
        );
    }

    #[test]
    fn invalid_batches_are_typed_errors() {
        // Nested batch.
        let nested = Message::Batch(vec![Message::Batch(vec![Message::Ping])]);
        let frame = nested.encode_frame();
        assert_eq!(
            Message::decode_frame(&frame),
            Err(CodecError::Invalid("nested batch"))
        );
        // Mutation inside a batch.
        let q = sample_query();
        let mutating = Message::Batch(vec![Message::DeleteWhere(q)]);
        assert_eq!(
            Message::decode_frame(&mutating.encode_frame()),
            Err(CodecError::Invalid("mutation inside batch"))
        );
        // Empty batch.
        let empty = Message::Batch(vec![]);
        assert_eq!(
            Message::decode_frame(&empty.encode_frame()),
            Err(CodecError::Invalid("empty batch"))
        );
        // A response inside a request batch.
        let resp = Message::Batch(vec![Message::Pong]);
        assert_eq!(
            Message::decode_frame(&resp.encode_frame()),
            Err(CodecError::Invalid("batch item is not a request"))
        );
        // A request inside a batch answer.
        let req = Message::BatchAnswer(vec![Message::Ping]);
        assert_eq!(
            Message::decode_frame(&req.encode_frame()),
            Err(CodecError::Invalid("batch answer item is not a response"))
        );
    }

    #[test]
    fn reply_frames_echo_request_ids_byte_for_byte() {
        // Regression for the serve-path correlation bug: a reply encoded
        // with the request's trace and request ids must carry them in the
        // exact same byte positions the request frame does.
        let req = Message::Query(sample_query()).encode_frame_req(PROTOCOL_VERSION, 0xABCD, 77);
        let reply = Message::Pong.encode_frame_req(PROTOCOL_VERSION, 0xABCD, 77);
        let trace_pos = FRAME_HEADER_LEN..FRAME_HEADER_LEN + TRACE_FIELD_LEN;
        let id_pos = FRAME_HEADER_LEN + TRACE_FIELD_LEN
            ..FRAME_HEADER_LEN + TRACE_FIELD_LEN + REQ_ID_FIELD_LEN;
        assert_eq!(req[trace_pos.clone()], reply[trace_pos]);
        assert_eq!(req[id_pos.clone()], reply[id_pos]);
        let d = Message::decode_frame_ext(&reply).unwrap();
        assert_eq!((d.trace, d.req_id), (0xABCD, 77));
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut enc = Enc::new();
            enc.varint(v);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            assert_eq!(dec.varint().unwrap(), v);
            dec.finish().unwrap();
        }
    }
}
