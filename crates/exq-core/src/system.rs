//! End-to-end hosted-database wrapper (Figure 1).
//!
//! [`Outsourcer::outsource`] runs the whole owner-side pipeline — scheme
//! construction, encryption, metadata building — and returns a
//! [`HostedDatabase`] holding the client and the server. Queries run
//! through the full round trip with per-phase timing (§7.2's six measured
//! phases) and simulated-link transmission accounting (the paper used a
//! 100 Mbps LAN; we model bytes/bandwidth so "transmission is negligible"
//! is checkable rather than assumed).

use crate::client::Client;
use crate::constraints::SecurityConstraint;
use crate::encrypt::{encrypt_database, EncryptStats};
use crate::error::CoreError;
use crate::scheme::{EncryptionScheme, SchemeKind};
use crate::server::Server;
use crate::telemetry;
use crate::transport::{InProcess, Transport};
use exq_crypto::KeyChain;
use exq_xml::Document;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Link and setup configuration.
#[derive(Debug, Clone)]
pub struct OutsourceConfig {
    /// Simulated link bandwidth in bits per second (paper: 100 Mbps).
    pub bandwidth_bps: f64,
    /// Simulated one-way link latency.
    pub latency: Duration,
    /// Era-faithful decryption cost model. The paper's dominant cost is
    /// client-side block decryption (2006-era 3DES in Java, ~10 MB/s);
    /// ChaCha20 on modern hardware runs three orders of magnitude faster,
    /// which would invert the paper's phase ordering. When set, the
    /// simulated cost is *added* to the measured decryption time, exactly
    /// like the simulated link is added for transmission. Set to `None`
    /// for raw modern timings.
    pub era: Option<EraCostModel>,
}

/// Simulated 2006-era decryption costs.
#[derive(Debug, Clone)]
pub struct EraCostModel {
    /// Sustained decryption throughput in bytes per second.
    pub decrypt_bytes_per_sec: f64,
    /// Fixed per-block overhead (key schedule, envelope parsing).
    pub per_block: Duration,
}

impl EraCostModel {
    /// Defaults matching the paper's testbed ballpark: 2006-era Java
    /// 3DES decryption plus XML re-parsing ran at single-digit MB/s,
    /// an order of magnitude below the 100 Mbps link — which is what makes
    /// the paper's "transmission is negligible" observation true.
    pub fn vldb2006() -> EraCostModel {
        EraCostModel {
            decrypt_bytes_per_sec: 3e6,
            per_block: Duration::from_micros(3),
        }
    }
}

impl Default for OutsourceConfig {
    fn default() -> Self {
        OutsourceConfig {
            bandwidth_bps: 100e6,
            latency: Duration::from_micros(200),
            era: Some(EraCostModel::vldb2006()),
        }
    }
}

impl OutsourceConfig {
    /// Raw modern timings: no simulated era decryption cost.
    pub fn modern() -> OutsourceConfig {
        OutsourceConfig {
            era: None,
            ..OutsourceConfig::default()
        }
    }
}

/// Owner-side pipeline entry point.
#[derive(Debug, Clone, Default)]
pub struct Outsourcer {
    config: OutsourceConfig,
}

impl Outsourcer {
    pub fn new(config: OutsourceConfig) -> Outsourcer {
        Outsourcer { config }
    }

    /// Encrypts `doc` under `constraints` with the given scheme kind and
    /// stands up the client/server pair. `seed` drives every random choice
    /// (keys, DSI gaps, OPESS weights/scales, decoys) for reproducibility.
    pub fn outsource(
        &self,
        doc: &Document,
        constraints: &[SecurityConstraint],
        kind: SchemeKind,
        seed: u64,
    ) -> Result<HostedDatabase, CoreError> {
        let scheme = EncryptionScheme::build(doc, constraints, kind)?;
        let keys = KeyChain::from_seed(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD5EA_5EED);
        let out = encrypt_database(doc, &scheme, &keys, &mut rng)?;
        let server = Server::new(&out);
        let client = Client::new(out.client_state.clone());
        Ok(HostedDatabase {
            client,
            server,
            setup: out.stats,
            scheme,
            config: self.config.clone(),
        })
    }
}

/// A hosted database: the client/server pair plus setup statistics.
#[derive(Debug, Clone)]
pub struct HostedDatabase {
    pub client: Client,
    pub server: Server,
    /// Owner-side encryption statistics (§7.4 metrics).
    pub setup: EncryptStats,
    pub scheme: EncryptionScheme,
    pub config: OutsourceConfig,
}

/// The six measured phases of §7.2.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTiming {
    pub client_translate: Duration,
    pub server_translate: Duration,
    pub server_process: Duration,
    /// Simulated transmission time (latency + payload/bandwidth).
    pub transmit: Duration,
    pub decrypt: Duration,
    pub post_process: Duration,
}

impl PhaseTiming {
    pub fn total(&self) -> Duration {
        self.client_translate
            + self.server_translate
            + self.server_process
            + self.transmit
            + self.decrypt
            + self.post_process
    }

    /// Client-side share (translation + decryption + post-processing).
    pub fn client_total(&self) -> Duration {
        self.client_translate + self.decrypt + self.post_process
    }
}

/// Result of one query round trip.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Serialized result nodes (exactly `Q(D)`).
    pub results: Vec<String>,
    pub timing: PhaseTiming,
    pub bytes_to_server: usize,
    pub bytes_to_client: usize,
    pub blocks_shipped: usize,
    /// Whether the naive fallback (unsupported server axis) was used.
    pub naive_fallback: bool,
    /// Whether the server answered (any branch) from its response cache.
    pub served_from_cache: bool,
}

impl HostedDatabase {
    /// Splits into the client/server pair.
    pub fn split(self) -> (Client, Server) {
        (self.client, self.server)
    }

    /// Runs one query through the secure pipeline (in-process link).
    pub fn query(&self, query: &str) -> Result<QueryOutcome, CoreError> {
        let mut link = InProcess::shared(&self.server);
        run_query(&self.client, &mut link, &self.config, query, false)
    }

    /// Runs one query through the naive baseline of §7.3: the server ships
    /// the whole encrypted database, the client decrypts everything and
    /// evaluates locally.
    pub fn query_naive(&self, query: &str) -> Result<QueryOutcome, CoreError> {
        let mut link = InProcess::shared(&self.server);
        run_query(&self.client, &mut link, &self.config, query, true)
    }
}

impl Client {
    /// Round-trip convenience with default link parameters over an
    /// in-process link.
    pub fn query(&self, server: &Server, query: &str) -> Result<QueryOutcome, CoreError> {
        let mut link = InProcess::shared(server);
        run_query(self, &mut link, &OutsourceConfig::default(), query, false)
    }

    /// Round trip over an arbitrary transport (e.g. [`TcpTransport`]) with
    /// default link parameters; byte counts come from the transport's own
    /// frame accounting.
    ///
    /// [`TcpTransport`]: crate::transport::TcpTransport
    pub fn query_via(
        &self,
        transport: &mut dyn Transport,
        query: &str,
    ) -> Result<QueryOutcome, CoreError> {
        run_query(self, transport, &OutsourceConfig::default(), query, false)
    }
}

fn run_query(
    client: &Client,
    transport: &mut dyn Transport,
    config: &OutsourceConfig,
    query: &str,
    force_naive: bool,
) -> Result<QueryOutcome, CoreError> {
    // Telemetry wrapper: open a client trace for the whole query (union
    // branches included — `current_trace() == 0` keeps recursion from
    // nesting traces), sink the stitched spans, and feed the slow-query
    // log. All of it is inert unless tracing was requested.
    let scope = if telemetry::tracing_wanted() && telemetry::current_trace() == 0 {
        Some(telemetry::begin_trace(
            telemetry::new_trace_id(),
            telemetry::Side::Client,
        ))
    } else {
        None
    };
    let started = std::time::Instant::now();
    let out = run_query_inner(client, transport, config, query, force_naive);
    if let Some(scope) = scope {
        telemetry::write_trace(&scope.finish());
    }
    if let Ok(o) = &out {
        telemetry::note_query(query, started.elapsed(), o.served_from_cache);
    }
    out
}

fn run_query_inner(
    client: &Client,
    transport: &mut dyn Transport,
    config: &OutsourceConfig,
    query: &str,
    force_naive: bool,
) -> Result<QueryOutcome, CoreError> {
    // Top-level unions run branch by branch; results merge with
    // string-level deduplication (first occurrence wins).
    let branches =
        exq_xpath::Path::parse_union(query).map_err(|e| CoreError::Query(e.to_string()))?;
    if branches.len() > 1 {
        let mut merged: Vec<String> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut timing = PhaseTiming::default();
        let mut bytes_to_server = 0;
        let mut bytes_to_client = 0;
        let mut blocks_shipped = 0;
        let mut naive_fallback = false;
        let mut served_from_cache = false;
        for b in &branches {
            let out = run_query_inner(client, transport, config, &b.to_string(), force_naive)?;
            for r in out.results {
                if seen.insert(r.clone()) {
                    merged.push(r);
                }
            }
            timing.client_translate += out.timing.client_translate;
            timing.server_translate += out.timing.server_translate;
            timing.server_process += out.timing.server_process;
            timing.transmit += out.timing.transmit;
            timing.decrypt += out.timing.decrypt;
            timing.post_process += out.timing.post_process;
            bytes_to_server += out.bytes_to_server;
            bytes_to_client += out.bytes_to_client;
            blocks_shipped += out.blocks_shipped;
            naive_fallback |= out.naive_fallback;
            served_from_cache |= out.served_from_cache;
        }
        merged.sort();
        return Ok(QueryOutcome {
            results: merged,
            timing,
            bytes_to_server,
            bytes_to_client,
            blocks_shipped,
            naive_fallback,
            served_from_cache,
        });
    }
    let tq = client.translate(query)?;
    // The span *is* the reported stat: record the measured duration rather
    // than re-timing, so traces and phase timings always agree.
    telemetry::record_span("client.translate", tq.translate_time);
    let naive = force_naive || tq.server_query.is_none();
    // Byte accounting is read off the transport: exact encoded frame
    // lengths in both directions, identical for in-process and TCP links.
    let before = transport.stats();
    let resp = if naive {
        transport.send_naive()?
    } else {
        transport.send_query(tq.server_query.as_ref().unwrap())?
    };
    let traffic = transport.stats().since(&before);
    let bytes_to_server = traffic.bytes_sent as usize;
    let bytes_to_client = traffic.bytes_received as usize;
    let block_sizes: Vec<usize> = resp.blocks.iter().map(|b| b.ciphertext.len()).collect();
    let post_query = if naive {
        &tq.full_query
    } else {
        &tq.post_query
    };
    let post = client.post_process(post_query, &resp)?;
    telemetry::record_span("client.decrypt", post.decrypt_time);
    telemetry::record_span("client.post_process", post.post_process_time);
    let transmit = simulate_link(config, bytes_to_server + bytes_to_client);
    let decrypt = post.decrypt_time + simulate_decrypt(config, &block_sizes, client.threads());
    Ok(QueryOutcome {
        results: post.results,
        timing: PhaseTiming {
            client_translate: tq.translate_time,
            server_translate: resp.translate_time,
            server_process: resp.process_time,
            transmit,
            decrypt,
            post_process: post.post_process_time,
        },
        bytes_to_server,
        bytes_to_client,
        blocks_shipped: resp.blocks.len(),
        naive_fallback: naive,
        served_from_cache: resp.served_from_cache,
    })
}

fn simulate_link(config: &OutsourceConfig, bytes: usize) -> Duration {
    let secs = (bytes as f64 * 8.0) / config.bandwidth_bps;
    config.latency * 2 + Duration::from_secs_f64(secs)
}

/// Simulated era decryption time for a set of blocks decrypted by
/// `threads` client workers.
///
/// Blocks are independent work items, so a multi-core era client decrypts
/// them in parallel; the simulated wall time is the makespan of assigning
/// each block (in shipping order) to the least-loaded worker — the same
/// dynamic scheduling the real pool uses. One thread reduces exactly to the
/// old serial sum.
fn simulate_decrypt(config: &OutsourceConfig, block_bytes: &[usize], threads: usize) -> Duration {
    let Some(era) = &config.era else {
        return Duration::ZERO;
    };
    let cost = |bytes: usize| {
        Duration::from_secs_f64(bytes as f64 / era.decrypt_bytes_per_sec) + era.per_block
    };
    let workers = threads.max(1).min(block_bytes.len().max(1));
    let mut load = vec![Duration::ZERO; workers];
    for &bytes in block_bytes {
        let min = load
            .iter_mut()
            .min()
            .expect("at least one simulated worker");
        *min += cost(bytes);
    }
    load.into_iter().max().unwrap_or(Duration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::SecurityConstraint;

    fn doc() -> Document {
        Document::parse("<r><p><n>Betty</n><s>763895</s></p><p><n>Matt</n><s>276543</s></p></r>")
            .unwrap()
    }

    fn cs() -> Vec<SecurityConstraint> {
        vec![SecurityConstraint::parse("//p:(/n, /s)").unwrap()]
    }

    #[test]
    fn era_model_inflates_decrypt_only() {
        let d = doc();
        let with_era = Outsourcer::new(OutsourceConfig::default())
            .outsource(&d, &cs(), SchemeKind::Opt, 1)
            .unwrap();
        let modern = Outsourcer::new(OutsourceConfig::modern())
            .outsource(&d, &cs(), SchemeKind::Opt, 1)
            .unwrap();
        let q = "//p[n = 'Betty']/s";
        let a = with_era.query(q).unwrap();
        let b = modern.query(q).unwrap();
        assert_eq!(a.results, b.results);
        assert!(
            a.blocks_shipped > 0,
            "era model needs shipped blocks to matter"
        );
        // Assert on the simulated component itself rather than comparing
        // two wall-clock measurements (µs-scale and load-sensitive): the
        // era model must add cost for the shipped blocks, the modern
        // config none.
        let shipped = vec![64usize; a.blocks_shipped];
        assert!(simulate_decrypt(&OutsourceConfig::default(), &shipped, 1) > Duration::ZERO);
        assert_eq!(
            simulate_decrypt(&OutsourceConfig::modern(), &shipped, 1),
            Duration::ZERO
        );
    }

    #[test]
    fn link_simulation_scales_with_bytes() {
        let slow = OutsourceConfig {
            bandwidth_bps: 1e6,
            ..OutsourceConfig::default()
        };
        let fast = OutsourceConfig::default();
        let d = doc();
        let hosted_slow = Outsourcer::new(slow)
            .outsource(&d, &cs(), SchemeKind::Top, 1)
            .unwrap();
        let hosted_fast = Outsourcer::new(fast)
            .outsource(&d, &cs(), SchemeKind::Top, 1)
            .unwrap();
        let a = hosted_slow.query("//p").unwrap();
        let b = hosted_fast.query("//p").unwrap();
        assert!(a.timing.transmit > b.timing.transmit);
    }

    #[test]
    fn phase_totals_add_up() {
        let t = PhaseTiming {
            client_translate: Duration::from_millis(1),
            server_translate: Duration::from_millis(2),
            server_process: Duration::from_millis(3),
            transmit: Duration::from_millis(4),
            decrypt: Duration::from_millis(5),
            post_process: Duration::from_millis(6),
        };
        assert_eq!(t.total(), Duration::from_millis(21));
        assert_eq!(t.client_total(), Duration::from_millis(12));
    }

    #[test]
    fn union_merges_and_dedups() {
        let d = doc();
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&d, &cs(), SchemeKind::Opt, 1)
            .unwrap();
        let out = hosted.query("//n | //n").unwrap();
        assert_eq!(out.results.len(), 2, "duplicate branches must dedup");
        let out = hosted.query("//n | //s").unwrap();
        assert_eq!(out.results.len(), 4);
    }
}
