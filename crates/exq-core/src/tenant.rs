//! Multi-tenancy: one serve loop, many named, independently-keyed sealed
//! databases.
//!
//! The paper's deployment model is a data owner outsourcing one encrypted
//! document to an untrusted host; a hosted service runs *many* such
//! databases behind one process. [`TenantRegistry`] maps a database name
//! (the db id carried by wire-v4 frames) to a [`Tenant`]: the sealed
//! [`Server`] state, the fingerprint of the client key that sealed it, a
//! per-db mutation [`ReplayTable`], per-db admission counters and quota,
//! and per-db traffic counters in the telemetry registry.
//!
//! Isolation invariants the registry upholds:
//!
//! * **Caches** — each tenant's server carries its own [`ServerCaches`]
//!   with its own generation counter, so one tenant's mutations never
//!   invalidate another's cached answers. Registered tenants get
//!   `{db="<name>"}`-labeled cache counters.
//! * **Replay** — each tenant has its own replay table, so the same
//!   request id arriving at two dbs dedupes independently (client request
//!   ids are only unique per client, not across tenants).
//! * **Admission** — each tenant has its own in-flight counter and an
//!   optional per-db cap, so one tenant's Busy storm cannot starve
//!   another's fair share of the global limit (see the serve loop).
//!
//! Persistence is a directory-of-databases layout: a checksummed
//! `MANIFEST` naming every db plus one crash-safe state file per db.
//! Old single-file server artifacts are auto-migrated on load
//! ([`TenantRegistry::open`]): the file is hosted as the default db and
//! the next [`TenantRegistry::save_dir`] writes the new layout.
//!
//! [`ServerCaches`]: crate::cache::ServerCaches

use crate::codec::MAX_DB_ID_LEN;
use crate::error::CoreError;
use crate::server::Server;
use crate::telemetry::{self, Counter, Gauge};
use crate::transport::ReplayTable;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// The database that anonymous (pre-v4 or empty-db) requests route to.
pub const DEFAULT_DB: &str = "default";

/// Serving state of one hosted database after storage faults. Owned by the
/// tenant, surfaced in `exq db list`, `exq top`, the flight recorder, and
/// the `exq_db_health` gauge; enforced by the serve paths.
///
/// Transitions: a failed WAL append or checkpoint flips `Healthy →
/// Degraded` (reads keep serving from pool + page file, mutations get
/// [`CoreError::Unavailable`]); a successful storage probe on a later
/// checkpointer tick flips back. `Faulted` — storage unusable even for
/// reads (e.g. the scrubber found an unrepairable record) — refuses
/// everything but pings and diagnostics, and only a reopen clears it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DbHealth {
    /// Fully serving.
    Healthy = 0,
    /// Read-only: storage writes are failing, reads still answer.
    Degraded = 1,
    /// Not serving data at all.
    Faulted = 2,
}

impl DbHealth {
    fn from_u8(v: u8) -> DbHealth {
        match v {
            1 => DbHealth::Degraded,
            2 => DbHealth::Faulted,
            _ => DbHealth::Healthy,
        }
    }

    /// Stable lowercase label for CLI columns and logs.
    pub fn label(self) -> &'static str {
        match self {
            DbHealth::Healthy => "healthy",
            DbHealth::Degraded => "degraded",
            DbHealth::Faulted => "faulted",
        }
    }
}

/// Manifest file name inside a database directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Manifest magic (versioned like the other persistence artifacts).
const MANIFEST_MAGIC: &[u8; 6] = b"EXQMF1";

/// Retry-after hint stamped on [`CoreError::Unavailable`] refusals: the
/// checkpointer probes degraded storage once per tick, so sooner retries
/// cannot observe a recovery.
pub const HEALTH_RETRY_AFTER_MS: u32 = 1000;

/// Validates a database id: non-empty, at most [`MAX_DB_ID_LEN`] bytes,
/// characters restricted to `[A-Za-z0-9._-]`, and starting with an
/// alphanumeric — safe as a wire field, a telemetry label, and a file
/// name. (Telemetry labels go through [`telemetry::db_series`] anyway, so
/// even a hostile name that slipped past validation could not corrupt the
/// exposition — defense in depth, not a reason to loosen this check.)
pub fn validate_db_id(name: &str) -> Result<(), CoreError> {
    if name.is_empty() {
        return Err(CoreError::Tenant("database name is empty".into()));
    }
    if name.len() > MAX_DB_ID_LEN {
        return Err(CoreError::Tenant(format!(
            "database name '{name}' exceeds {MAX_DB_ID_LEN} bytes"
        )));
    }
    let mut chars = name.chars();
    let first = chars.next().unwrap();
    if !first.is_ascii_alphanumeric() {
        return Err(CoreError::Tenant(format!(
            "database name '{name}' must start with an ASCII letter or digit"
        )));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(CoreError::Tenant(format!(
            "database name '{name}' may only contain [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

/// One hosted database: sealed server state plus everything the serve loop
/// must keep *per tenant* so tenants cannot interfere with each other.
pub struct Tenant {
    name: String,
    /// The sealed server. Shared (`Arc<RwLock>`) so a caller that already
    /// holds a handle (tests, the single-db [`serve`] wrapper) observes
    /// the same state the serve loop mutates.
    ///
    /// [`serve`]: crate::transport::serve
    pub server: Arc<RwLock<Server>>,
    /// Per-tenant at-most-once mutation ledger: request ids are only
    /// unique per client, so replay suppression must not bleed across dbs.
    pub replay: ReplayTable,
    /// Requests currently admitted for this tenant.
    inflight: AtomicUsize,
    /// Per-db in-flight cap (0 = inherit the serve loop's fair share).
    max_inflight: AtomicUsize,
    /// FNV-1a fingerprint of the sealing client's master key (0 when
    /// unknown, e.g. for servers adopted without their client artifact).
    key_fingerprint: u64,
    /// `exq_db_requests_total{db="<name>"}`.
    requests: Arc<Counter>,
    /// `exq_db_shed_total{db="<name>"}`.
    shed: Arc<Counter>,
    /// Per-db resource totals, fed once per request from the request's
    /// taken [`telemetry::QueryProfile`] — so background work (the
    /// checkpointer's own faults and fsyncs) never pollutes them, and the
    /// sum of per-query profiles reconciles with these counters exactly.
    profile: DbProfileCounters,
    /// Current [`DbHealth`] discriminant.
    health: AtomicU8,
    /// Why the db left `Healthy` (empty when healthy).
    health_reason: Mutex<String>,
    /// When the db left `Healthy` (for the recovery event's duration).
    unhealthy_since: Mutex<Option<Instant>>,
    /// `exq_db_health{db="<name>"}`: 0 healthy, 1 degraded, 2 faulted.
    health_gauge: Arc<Gauge>,
}

/// The per-db aggregation of [`telemetry::QueryProfile`]: one counter per
/// profile field, labeled `{db="<name>"}`.
struct DbProfileCounters {
    pool_hits: Arc<Counter>,
    pool_misses: Arc<Counter>,
    pages_faulted: Arc<Counter>,
    evictions: Arc<Counter>,
    epoch_retries: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    records_decoded: Arc<Counter>,
    blocks_shipped: Arc<Counter>,
    cache_hits: Arc<Counter>,
}

impl DbProfileCounters {
    fn new(name: &str) -> DbProfileCounters {
        let c = |metric: &str| telemetry::counter(&telemetry::db_series(metric, name));
        DbProfileCounters {
            pool_hits: c("exq_db_pool_hits_total"),
            pool_misses: c("exq_db_pool_misses_total"),
            pages_faulted: c("exq_db_pages_faulted_total"),
            evictions: c("exq_db_evictions_total"),
            epoch_retries: c("exq_db_epoch_retries_total"),
            wal_bytes: c("exq_db_wal_bytes_total"),
            records_decoded: c("exq_db_records_decoded_total"),
            blocks_shipped: c("exq_db_blocks_shipped_total"),
            cache_hits: c("exq_db_cache_hits_total"),
        }
    }
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("key_fingerprint", &self.key_fingerprint)
            .field("inflight", &self.inflight())
            .field("max_inflight", &self.max_inflight())
            .finish_non_exhaustive()
    }
}

impl Tenant {
    fn new(
        name: &str,
        server: Arc<RwLock<Server>>,
        key_fingerprint: u64,
        max_inflight: usize,
    ) -> Tenant {
        Tenant {
            name: name.to_owned(),
            server,
            replay: ReplayTable::default(),
            inflight: AtomicUsize::new(0),
            max_inflight: AtomicUsize::new(max_inflight),
            key_fingerprint,
            requests: telemetry::counter(&telemetry::db_series("exq_db_requests_total", name)),
            shed: telemetry::counter(&telemetry::db_series("exq_db_shed_total", name)),
            profile: DbProfileCounters::new(name),
            health: AtomicU8::new(DbHealth::Healthy as u8),
            health_reason: Mutex::new(String::new()),
            unhealthy_since: Mutex::new(None),
            health_gauge: telemetry::gauge(&telemetry::db_series("exq_db_health", name)),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn key_fingerprint(&self) -> u64 {
        self.key_fingerprint
    }

    /// Requests currently admitted for this tenant.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    pub(crate) fn enter_inflight(&self) -> usize {
        self.inflight.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn leave_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }

    /// The per-db in-flight quota (0 = inherit the fair share).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight.load(Ordering::SeqCst)
    }

    pub fn set_max_inflight(&self, cap: usize) {
        self.max_inflight.store(cap, Ordering::SeqCst);
    }

    /// The cap the admission check enforces for this tenant: its own quota
    /// if set, else the serve loop's computed fair share.
    pub fn effective_cap(&self, fair_share: usize) -> usize {
        let own = self.max_inflight();
        if own > 0 {
            own
        } else {
            fair_share
        }
    }

    /// Requests routed to this tenant (admitted or shed).
    pub fn requests_total(&self) -> u64 {
        self.requests.get()
    }

    /// Requests shed for this tenant at admission.
    pub fn shed_total(&self) -> u64 {
        self.shed.get()
    }

    pub(crate) fn note_request(&self) {
        self.requests.inc();
    }

    pub(crate) fn note_shed(&self) {
        self.shed.inc();
    }

    /// Folds one finished request's resource profile into this db's
    /// totals. Called exactly once per dispatched request by the serve
    /// paths, so `sum(profiles) == registry counters` holds exactly.
    pub(crate) fn note_profile(&self, p: &telemetry::QueryProfile) {
        self.profile.pool_hits.add(p.pool_hits);
        self.profile.pool_misses.add(p.pool_misses);
        self.profile.pages_faulted.add(p.pages_faulted);
        self.profile.evictions.add(p.evictions);
        self.profile.epoch_retries.add(p.epoch_retries);
        self.profile.wal_bytes.add(p.wal_bytes);
        self.profile.records_decoded.add(p.records_decoded);
        self.profile.blocks_shipped.add(p.blocks_shipped);
        if p.cache_hit {
            self.profile.cache_hits.inc();
        }
    }

    /// Republishes this tenant's storage gauges (pool occupancy, WAL
    /// depth, disk footprint) if it is paged. Called after checkpoints and
    /// on every metrics scrape so gauges are fresh at read time instead of
    /// trailing the last mutation.
    pub fn refresh_store_gauges(&self) {
        let guard = match self.server.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(db) = guard.paged_store() {
            db.publish_metrics();
        }
    }

    /// Current serving health.
    pub fn health(&self) -> DbHealth {
        DbHealth::from_u8(self.health.load(Ordering::SeqCst))
    }

    /// Why the db is not `Healthy` (empty string when it is).
    pub fn health_reason(&self) -> String {
        match self.health_reason.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    fn set_health(&self, next: DbHealth, reason: &str) {
        let prev = DbHealth::from_u8(self.health.swap(next as u8, Ordering::SeqCst));
        {
            let mut g = match self.health_reason.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            g.clear();
            g.push_str(reason);
        }
        self.health_gauge.set(next as i64);
        if prev == next {
            return;
        }
        let mut since = match self.unhealthy_since.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if next == DbHealth::Healthy {
            let ms = since
                .take()
                .map(|t| t.elapsed().as_millis() as u64)
                .unwrap_or(0);
            crate::flight::event(crate::flight::Kind::Recovered, &self.name, ms, 0, 0);
        } else {
            if prev == DbHealth::Healthy {
                *since = Some(Instant::now());
            }
            crate::flight::event(crate::flight::Kind::Degraded, &self.name, next as u64, 0, 0);
        }
    }

    /// Flips to read-only after a storage write failure. Keeps the first
    /// reason if already degraded; never *improves* a `Faulted` db (that
    /// takes an explicit [`Tenant::set_healthy`] or reopen).
    pub fn set_degraded(&self, reason: &str) {
        if self.health() == DbHealth::Faulted {
            return;
        }
        if self.health() == DbHealth::Degraded {
            return;
        }
        self.set_health(DbHealth::Degraded, reason);
    }

    /// Storage is unusable even for reads.
    pub fn set_faulted(&self, reason: &str) {
        self.set_health(DbHealth::Faulted, reason);
    }

    /// Storage answered a probe; resume full service.
    pub fn set_healthy(&self) {
        self.set_health(DbHealth::Healthy, "");
    }

    /// The serve-path gate: `Ok` when `msg_is_mutation`-class traffic is
    /// allowed, a typed [`CoreError::Unavailable`] otherwise. Read-only
    /// traffic passes unless the db is `Faulted`.
    pub fn admit_health(&self, is_mutation: bool) -> Result<(), CoreError> {
        match self.health() {
            DbHealth::Healthy => Ok(()),
            DbHealth::Degraded if !is_mutation => Ok(()),
            state => Err(CoreError::Unavailable {
                retry_after_ms: HEALTH_RETRY_AFTER_MS,
                reason: format!("{}: {}", state.label(), self.health_reason()),
            }),
        }
    }

    /// Cache counters of this tenant's server.
    pub fn cache_stats(&self) -> crate::cache::CacheStatsSnapshot {
        match self.server.read() {
            Ok(guard) => guard.cache_stats(),
            Err(poisoned) => poisoned.into_inner().cache_stats(),
        }
    }
}

/// A named collection of hosted databases behind one serve loop.
pub struct TenantRegistry {
    inner: RwLock<HashMap<String, Arc<Tenant>>>,
    default_db: String,
}

impl TenantRegistry {
    /// An empty registry whose anonymous requests will route to
    /// `default_db` once a database of that name is created.
    pub fn new(default_db: &str) -> Result<TenantRegistry, CoreError> {
        validate_db_id(default_db)?;
        Ok(TenantRegistry {
            inner: RwLock::new(HashMap::new()),
            default_db: default_db.to_owned(),
        })
    }

    /// Wraps one already-shared server as the sole (default) database,
    /// preserving the single-db [`serve`] behavior exactly: the caller's
    /// `Arc` stays live and the server's caches are *not* relabeled.
    ///
    /// [`serve`]: crate::transport::serve
    pub fn single(name: &str, server: Arc<RwLock<Server>>) -> Result<TenantRegistry, CoreError> {
        let registry = TenantRegistry::new(name)?;
        let tenant = Arc::new(Tenant::new(name, server, 0, 0));
        registry.lock_write().insert(name.to_owned(), tenant);
        Ok(registry)
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Tenant>>> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<Tenant>>> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a database. Rejects invalid names and duplicates with a
    /// typed [`CoreError::Tenant`]; labels the server's caches with the db
    /// name so its stats are scrapeable per tenant.
    pub fn create(
        &self,
        name: &str,
        server: Server,
        key_fingerprint: u64,
        max_inflight: usize,
    ) -> Result<Arc<Tenant>, CoreError> {
        validate_db_id(name)?;
        let mut server = server;
        server.set_cache_db_label(name);
        let server = Arc::new(RwLock::new(server));
        let tenant = Arc::new(Tenant::new(name, server, key_fingerprint, max_inflight));
        let mut map = self.lock_write();
        if map.contains_key(name) {
            return Err(CoreError::Tenant(format!(
                "database '{name}' already exists"
            )));
        }
        map.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// The tenant a frame's db id routes to: the named db, or the default
    /// db for an empty id (which is all pre-v4 peers can send). Unknown
    /// names are a typed error, answered as an error frame — never a
    /// panic, never another tenant's data.
    pub fn resolve(&self, db: &str) -> Result<Arc<Tenant>, CoreError> {
        let name = if db.is_empty() { &self.default_db } else { db };
        self.lock_read()
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::Tenant(format!("unknown database '{name}'")))
    }

    /// The named tenant, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.lock_read().get(name).cloned()
    }

    /// Unregisters a database and removes its `{db="<name>"}` series from
    /// the telemetry registry — a dropped db must disappear from the next
    /// scrape, not linger as a frozen ghost. The state file (if any) is
    /// not touched; callers that manage a directory remove it and re-save
    /// the manifest.
    pub fn drop_db(&self, name: &str) -> Result<Arc<Tenant>, CoreError> {
        let tenant = self
            .lock_write()
            .remove(name)
            .ok_or_else(|| CoreError::Tenant(format!("unknown database '{name}'")))?;
        telemetry::remove_db_series(name);
        Ok(tenant)
    }

    /// Registered database names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock_read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn len(&self) -> usize {
        self.lock_read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The database anonymous requests route to.
    pub fn default_db(&self) -> &str {
        &self.default_db
    }

    /// All tenants, sorted by name (for logging and per-db stats).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        let mut out: Vec<Arc<Tenant>> = self.lock_read().values().cloned().collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Republishes every paged tenant's storage gauges (see
    /// [`Tenant::refresh_store_gauges`]). The serve paths call this on
    /// metrics scrapes so a scrape always reads current occupancy.
    pub fn refresh_store_gauges(&self) {
        for t in self.tenants() {
            t.refresh_store_gauges();
        }
    }

    // ------------------------------------------------------- persistence --

    /// The state file a database persists to inside `dir`.
    pub fn db_path(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.exq"))
    }

    /// Saves every database to `dir` in the directory-of-databases layout:
    /// one crash-safe state file per db plus a checksummed manifest. A
    /// paged tenant checkpoints its store (folds the WAL into pages)
    /// instead of rewriting a single-file artifact. The directory is
    /// created if missing.
    pub fn save_dir(&self, dir: &Path) -> Result<(), CoreError> {
        std::fs::create_dir_all(dir).map_err(|e| CoreError::Persist(e.to_string()))?;
        let tenants = self.tenants();
        for t in &tenants {
            let paged = {
                let guard = match t.server.read() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.paged_store().is_some()
            };
            if paged {
                crate::store::checkpoint_once(&t.server)?;
                continue;
            }
            let guard = match t.server.read() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.save(&Self::db_path(dir, &t.name))?;
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        write_string(&mut buf, &self.default_db);
        buf.extend_from_slice(&(tenants.len() as u64).to_le_bytes());
        for t in &tenants {
            write_string(&mut buf, &t.name);
            write_string(&mut buf, &format!("{}.exq", t.name));
            buf.extend_from_slice(&t.key_fingerprint.to_le_bytes());
            buf.extend_from_slice(&(t.max_inflight() as u64).to_le_bytes());
        }
        crate::persist::atomic_write(
            &dir.join(MANIFEST_FILE),
            &crate::persist::seal_checksum(buf),
        )
    }

    /// Loads a directory-of-databases layout written by
    /// [`TenantRegistry::save_dir`].
    pub fn load_dir(dir: &Path) -> Result<TenantRegistry, CoreError> {
        Self::load_dir_with(dir, &|path, _name| Server::load(path))
    }

    /// Loads a directory-of-databases layout, opening every database
    /// out-of-core: paged siblings are authoritative, legacy single-file
    /// artifacts migrate on first open.
    pub fn load_dir_paged(
        dir: &Path,
        opts: crate::store::StoreOptions,
    ) -> Result<TenantRegistry, CoreError> {
        Self::load_dir_with(dir, &|path, name| {
            let (server, _db, replay) = crate::store::PagedDb::open_or_migrate(path, name, opts)?;
            if replay.replayed + replay.failed > 0 || replay.dropped_torn_tail {
                telemetry::counter(&format!("exq_store_replayed_total{{db=\"{name}\"}}"))
                    .add(replay.replayed as u64);
            }
            Ok(server)
        })
    }

    fn load_dir_with(
        dir: &Path,
        open: &dyn Fn(&Path, &str) -> Result<Server, CoreError>,
    ) -> Result<TenantRegistry, CoreError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let data = std::fs::read(&manifest_path)
            .map_err(|e| CoreError::Persist(format!("read {}: {e}", manifest_path.display())))?;
        let body = crate::persist::checked_body(&data, MANIFEST_MAGIC, MANIFEST_MAGIC, "manifest")?;
        let mut pos = 0usize;
        let default_db = read_string(body, &mut pos)?;
        let count = read_u64(body, &mut pos)? as usize;
        // Each entry is at least two length prefixes + two u64s.
        if count.saturating_mul(32) > body.len() {
            return Err(CoreError::Persist("manifest count exceeds input".into()));
        }
        let registry = TenantRegistry::new(&default_db)?;
        for _ in 0..count {
            let name = read_string(body, &mut pos)?;
            let file = read_string(body, &mut pos)?;
            let key_fingerprint = read_u64(body, &mut pos)?;
            let max_inflight = read_u64(body, &mut pos)? as usize;
            validate_db_id(&name)?;
            if std::path::Path::new(&file).components().nth(1).is_some() {
                return Err(CoreError::Persist(format!(
                    "manifest entry '{name}' names a non-local state file '{file}'"
                )));
            }
            let server = open(&dir.join(&file), &name)?;
            registry.create(&name, server, key_fingerprint, max_inflight)?;
        }
        if pos != body.len() {
            return Err(CoreError::Persist("manifest trailing bytes".into()));
        }
        Ok(registry)
    }

    /// Opens `path` in whichever layout it holds: a directory with a
    /// manifest loads as-is, a legacy single-file server artifact is
    /// auto-migrated in memory — hosted as `default_db` (key fingerprint
    /// unknown); the next [`TenantRegistry::save_dir`] writes the new
    /// layout.
    pub fn open(path: &Path, default_db: &str) -> Result<TenantRegistry, CoreError> {
        if path.is_dir() {
            return Self::load_dir(path);
        }
        let server = Server::load(path)?;
        let registry = TenantRegistry::new(default_db)?;
        registry.create(default_db, server, 0, 0)?;
        Ok(registry)
    }

    /// [`TenantRegistry::open`], but every database is hosted out-of-core
    /// through a paged store (migrating legacy artifacts on first open).
    pub fn open_paged(
        path: &Path,
        default_db: &str,
        opts: crate::store::StoreOptions,
    ) -> Result<TenantRegistry, CoreError> {
        if path.is_dir() {
            return Self::load_dir_paged(path, opts);
        }
        let (server, _db, _replay) =
            crate::store::PagedDb::open_or_migrate(path, default_db, opts)?;
        let registry = TenantRegistry::new(default_db)?;
        registry.create(default_db, server, 0, 0)?;
        Ok(registry)
    }
}

fn write_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CoreError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| CoreError::Persist("manifest truncated".into()))?;
    let v = u64::from_le_bytes(buf[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

fn read_string(buf: &[u8], pos: &mut usize) -> Result<String, CoreError> {
    let n = read_u64(buf, pos)? as usize;
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| CoreError::Persist("manifest truncated".into()))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| CoreError::Persist("manifest string is not UTF-8".into()))?
        .to_owned();
    *pos = end;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_id_validation() {
        assert!(validate_db_id("hospital-east").is_ok());
        assert!(validate_db_id("a").is_ok());
        assert!(validate_db_id("v2.records_x").is_ok());
        assert!(validate_db_id(&"d".repeat(MAX_DB_ID_LEN)).is_ok());

        assert!(validate_db_id("").is_err());
        assert!(validate_db_id(&"d".repeat(MAX_DB_ID_LEN + 1)).is_err());
        assert!(validate_db_id(".hidden").is_err());
        assert!(validate_db_id("-flag").is_err());
        assert!(validate_db_id("has space").is_err());
        assert!(validate_db_id("has/slash").is_err());
        assert!(validate_db_id("há").is_err());
    }

    fn test_server() -> Server {
        crate::server::tests_support::build_server(crate::scheme::SchemeKind::Opt).0
    }

    #[test]
    fn registry_rejects_duplicates_and_unknowns() {
        let registry = TenantRegistry::new("main-reg-test").unwrap();
        registry
            .create("main-reg-test", test_server(), 7, 0)
            .unwrap();
        let err = registry
            .create("main-reg-test", test_server(), 7, 0)
            .unwrap_err();
        assert!(matches!(err, CoreError::Tenant(_)), "got {err:?}");
        assert!(matches!(
            registry.resolve("nope"),
            Err(CoreError::Tenant(_))
        ));
        // Empty id routes to the default db.
        assert_eq!(registry.resolve("").unwrap().name(), "main-reg-test");
        assert_eq!(registry.names(), vec!["main-reg-test".to_owned()]);
        registry.drop_db("main-reg-test").unwrap();
        assert!(registry.is_empty());
        assert!(matches!(registry.resolve(""), Err(CoreError::Tenant(_))));
    }

    #[test]
    fn health_transitions_and_gating() {
        let registry = TenantRegistry::new("health-test-db").unwrap();
        let t = registry
            .create("health-test-db", test_server(), 0, 0)
            .unwrap();
        assert_eq!(t.health(), DbHealth::Healthy);
        assert!(t.admit_health(true).is_ok());

        t.set_degraded("wal append failed");
        assert_eq!(t.health(), DbHealth::Degraded);
        assert_eq!(t.health_reason(), "wal append failed");
        // Reads pass, mutations refuse with the typed error + hint.
        assert!(t.admit_health(false).is_ok());
        match t.admit_health(true) {
            Err(CoreError::Unavailable {
                retry_after_ms,
                reason,
            }) => {
                assert_eq!(retry_after_ms, HEALTH_RETRY_AFTER_MS);
                assert_eq!(reason, "degraded: wal append failed");
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
        // The first cause sticks while degraded.
        t.set_degraded("second fault");
        assert_eq!(t.health_reason(), "wal append failed");

        t.set_healthy();
        assert_eq!(t.health(), DbHealth::Healthy);
        assert_eq!(t.health_reason(), "");
        assert!(t.admit_health(true).is_ok());

        t.set_faulted("unrepairable record");
        assert!(t.admit_health(false).is_err());
        // Degraded never *improves* a faulted db.
        t.set_degraded("later write error");
        assert_eq!(t.health(), DbHealth::Faulted);
        t.set_healthy();
        assert_eq!(t.health(), DbHealth::Healthy);
    }

    #[test]
    fn effective_cap_prefers_own_quota() {
        let registry = TenantRegistry::new("cap-test-db").unwrap();
        let t = registry.create("cap-test-db", test_server(), 0, 0).unwrap();
        assert_eq!(t.effective_cap(5), 5, "no quota → fair share");
        t.set_max_inflight(2);
        assert_eq!(t.effective_cap(5), 2, "own quota wins");
        assert_eq!(t.effective_cap(0), 2);
    }
}
