//! Incremental updates — the paper's future-work item #3.
//!
//! The integer DSI labeling makes this possible without global relabeling:
//! gaps are wide (see `exq_index::dsi::UPDATE_STRIDE`), so a new record's
//! intervals can be nested into the slack between a parent's last child and
//! the parent's upper bound. The protocol:
//!
//! * **insert** — the client locates the parent (a translated query), asks
//!   the server for an [`InsertionSlot`] (the free label range plus the next
//!   block id), applies the *stored encryption policy* (the scheme's chosen
//!   paths) to the new record, labels it inside the slot, seals its blocks,
//!   and sends an [`InsertDelta`]: an annotated visible fragment plus the
//!   DSI/block/value-index entries. The server splices everything in.
//! * **delete** — the client sends a translated query; the server detaches
//!   matching visible subtrees, drops their metadata entries, and tombstones
//!   their blocks. Victims strictly inside a block cannot be removed
//!   server-side (the server cannot rewrite ciphertext) and are reported as
//!   skipped.
//!
//! Security caveats (this goes beyond what the paper analyzes): repeated
//! inserts of the same value let the attacker watch the OPESS histogram
//! evolve, and inserted blocks are visibly newer than the original ones.
//! The per-update leakage is bounded by the same counting arguments, but
//! the formal guarantees of §4–6 are only proved for the static database.

use crate::client::Client;
use crate::encrypt::{OpessAttr, ValueCodec, BLOCK_ID_ATTR, BLOCK_MARKER_TAG, DECOY_TAG};
use crate::error::CoreError;
use crate::server::Server;
use exq_crypto::{seal_block, OpessPlan, SealedBlock};
use exq_index::dsi::{DsiLabeling, Interval};
use exq_xml::{Document, NodeId, NodeKind};
use exq_xpath::eval_document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Reserved attribute prefix carrying interval annotations in the visible
/// fragment of an [`InsertDelta`].
pub const IV_ATTR: &str = "_exq_iv";

/// What the server offers the client for an insertion under a parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertionSlot {
    pub parent: Interval,
    /// Open label range `(gap_lo, gap_hi)` available for the new subtree.
    pub gap_lo: u64,
    pub gap_hi: u64,
    /// Block ids the client may assign to new blocks, starting here.
    pub next_block_id: u32,
}

/// The client-prepared insertion payload.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertDelta {
    pub parent: Interval,
    /// Visible fragment with `_exq_iv` interval annotations and block
    /// markers.
    pub visible_fragment: String,
    pub blocks: Vec<SealedBlock>,
    /// `(table key, interval)` additions for the DSI index table.
    pub dsi_entries: Vec<(String, Interval)>,
    /// `(representative interval, block id)` additions.
    pub block_entries: Vec<(Interval, u32)>,
    /// `(encrypted attribute, ciphertext, block id)` additions.
    pub value_entries: Vec<(String, u128, u32)>,
}

impl InsertDelta {
    /// Exact wire size: the length of the encoded `ApplyInsert` frame this
    /// delta travels in (header included).
    pub fn wire_size(&self) -> usize {
        use crate::codec::WireCodec;
        crate::codec::FRAME_HEADER_LEN + self.encoded_len()
    }
}

/// Result of a delete request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteOutcome {
    /// Matching subtrees removed.
    pub deleted: usize,
    /// Matches that could not be removed because they live strictly inside
    /// an encryption block.
    pub skipped_in_block: usize,
}

impl Server {
    /// Offers an insertion slot under the given (visible) parent interval.
    pub fn insertion_slot(&self, parent: Interval) -> Result<InsertionSlot, CoreError> {
        let vis = self
            .visible_node_of(&parent)
            .ok_or_else(|| CoreError::Query("insertion parent is not a visible node".into()))?;
        if self.visible_element_name(vis).is_none()
            || self.visible_element_name(vis) == Some(BLOCK_MARKER_TAG)
        {
            return Err(CoreError::Query(
                "insertion parent must be a visible element".into(),
            ));
        }
        let mut gap_lo = parent.lo;
        for iv in self.known_intervals_within(&parent) {
            gap_lo = gap_lo.max(iv.hi);
        }
        Ok(InsertionSlot {
            parent,
            gap_lo,
            gap_hi: parent.hi,
            next_block_id: self.block_count() as u32,
        })
    }

    /// Applies a client-prepared insertion. On a paged server the delta's
    /// wire encoding is appended to the WAL (fsync = commit) *before* the
    /// in-memory apply, so a kill at any later point replays it on open.
    pub fn apply_insert(&mut self, delta: &InsertDelta) -> Result<(), CoreError> {
        use crate::codec::WireCodec;
        self.log_mutation(crate::store::KIND_INSERT, &delta.encode())?;
        self.apply_insert_unlogged(delta)
    }

    /// The in-memory insert apply, shared by the live path and WAL replay.
    pub(crate) fn apply_insert_unlogged(&mut self, delta: &InsertDelta) -> Result<(), CoreError> {
        let vis_parent = self
            .visible_node_of(&delta.parent)
            .ok_or_else(|| CoreError::Query("insertion parent vanished".into()))?;
        let frag = Document::parse(&delta.visible_fragment)
            .map_err(|e| CoreError::Response(format!("bad fragment: {e}")))?;
        let froot = frag
            .root()
            .ok_or_else(|| CoreError::Response("empty fragment".into()))?;
        for b in &delta.blocks {
            if b.id as usize != self.block_count() {
                return Err(CoreError::Response("block id collision".into()));
            }
            self.push_block(b.clone());
        }
        self.splice_annotated(&frag, froot, vis_parent)?;
        self.apply_metadata_delta(
            &delta.dsi_entries,
            &delta.block_entries,
            &delta.value_entries,
        );
        Ok(())
    }

    /// Deletes every subtree matched by the translated query. WAL-logged
    /// like [`Server::apply_insert`] when paged.
    pub fn delete_where(
        &mut self,
        q: &crate::wire::ServerQuery,
    ) -> Result<DeleteOutcome, CoreError> {
        use crate::codec::WireCodec;
        self.log_mutation(crate::store::KIND_DELETE, &q.encode())?;
        Ok(self.delete_where_unlogged(q))
    }

    /// The in-memory delete apply, shared by the live path and WAL replay.
    pub(crate) fn delete_where_unlogged(&mut self, q: &crate::wire::ServerQuery) -> DeleteOutcome {
        let victims = self.locate(q);
        let mut out = DeleteOutcome {
            deleted: 0,
            skipped_in_block: 0,
        };
        for v in victims {
            if self.remove_visible_subtree(&v) {
                out.deleted += 1;
            } else {
                out.skipped_in_block += 1;
            }
        }
        if out.deleted > 0 {
            self.rebuild_universe();
        }
        out
    }
}

impl Client {
    /// Inserts `record_xml` as a new child of the first node matching
    /// `parent_query`, applying the stored encryption policy (in-process
    /// link).
    pub fn insert(
        &mut self,
        server: &mut Server,
        parent_query: &str,
        record_xml: &str,
        seed: u64,
    ) -> Result<InsertDelta, CoreError> {
        let mut link = crate::transport::InProcess::exclusive(server);
        self.insert_via(&mut link, parent_query, record_xml, seed)
    }

    /// [`Client::insert`] over an arbitrary transport: locate the parent,
    /// request a slot, prepare the delta locally, apply it remotely — four
    /// round trips, all framed.
    pub fn insert_via(
        &mut self,
        transport: &mut dyn crate::transport::Transport,
        parent_query: &str,
        record_xml: &str,
        seed: u64,
    ) -> Result<InsertDelta, CoreError> {
        let tq = self.translate(parent_query)?;
        let sq = tq
            .server_query
            .ok_or_else(|| CoreError::Query("parent query not server-evaluable".into()))?;
        let parents = transport.locate(&sq)?;
        let parent = parents
            .first()
            .copied()
            .ok_or_else(|| CoreError::Query("insertion parent not found".into()))?;
        let slot = transport.insertion_slot(parent)?;
        let delta = self.prepare_insert(&slot, record_xml, seed)?;
        transport.apply_insert(&delta)?;
        Ok(delta)
    }

    /// Prepares the insertion payload for a slot (exposed separately so
    /// tests and tools can inspect deltas before applying them).
    pub fn prepare_insert(
        &mut self,
        slot: &InsertionSlot,
        record_xml: &str,
        seed: u64,
    ) -> Result<InsertDelta, CoreError> {
        let record = Document::parse(record_xml).map_err(|e| CoreError::Query(e.to_string()))?;
        record.root().ok_or(CoreError::EmptyDocument)?;
        let mut rng = StdRng::seed_from_u64(seed);

        // 1. Apply the stored encryption policy to the record.
        let targets = self.policy_targets(&record);

        // 2. Decoys on leaf-element targets.
        let mut working = record.clone();
        let decoy_prf = self.state().keys.decoy_prf();
        for (i, &t) in targets.iter().enumerate() {
            let is_leaf = working
                .node(t)
                .children()
                .iter()
                .all(|&c| !working.node(c).is_element());
            if is_leaf {
                let d = working.add_element(Some(t), DECOY_TAG);
                let mut buf = [0u8; 6];
                decoy_prf.fill(&(slot.gap_lo ^ i as u64).to_le_bytes(), &mut buf);
                let val: String = buf.iter().map(|&b| (b'a' + b % 26) as char).collect();
                working.add_text(d, &val);
            }
        }

        // 3. Label inside the slot.
        let labeling = DsiLabeling::assign_in_slot(&working, &mut rng, slot.gap_lo, slot.gap_hi)
            .ok_or_else(|| {
                CoreError::Query("insertion slot exhausted; re-outsource to relabel".into())
            })?;

        // 4. Block membership.
        let mut block_of: Vec<Option<u32>> =
            vec![None; working.iter().map(|n| n.index() + 1).max().unwrap_or(0)];
        for (i, &t) in targets.iter().enumerate() {
            for n in working.descendants(t) {
                block_of[n.index()] = Some(slot.next_block_id + i as u32);
            }
        }

        // 5. Seal blocks.
        let block_key = self.state().keys.block_key();
        let mut blocks = Vec::with_capacity(targets.len());
        let mut block_entries = Vec::with_capacity(targets.len());
        for (i, &t) in targets.iter().enumerate() {
            let id = slot.next_block_id + i as u32;
            let xml = working.node_to_xml(t);
            let nonce = self
                .state()
                .keys
                .nonce("block-insert", slot.gap_lo ^ id as u64);
            blocks.push(seal_block(&block_key, id, nonce, xml.as_bytes()));
            let rep = labeling.interval(t).expect("target labeled");
            block_entries.push((rep, id));
        }

        // 6. Visible fragment + DSI entries + vocabulary updates.
        let cipher = self.state().keys.tag_cipher();
        let mut visible = Document::new();
        let mut dsi_entries = Vec::new();
        build_insert_fragment(
            &working,
            working.root().unwrap(),
            None,
            &block_of,
            &labeling,
            &cipher,
            &mut visible,
            &mut dsi_entries,
        );
        // Vocabulary updates so future query translation knows the forms.
        {
            let state = self.state_mut();
            for n in working.iter() {
                let key = match working.node(n).kind() {
                    NodeKind::Element(t) => working.tag_name(*t).to_owned(),
                    NodeKind::Attribute(t, _) => format!("@{}", working.tag_name(*t)),
                    NodeKind::Text(_) => continue,
                };
                if block_of[n.index()].is_some() {
                    state.encrypted_tags.insert(key);
                } else {
                    state.plain_tags.insert(key);
                }
            }
        }

        // 7. Value-index entries for encrypted leaf values.
        let mut value_entries = Vec::new();
        for n in working.iter() {
            let Some(b) = block_of[n.index()] else {
                continue;
            };
            let (attr, value) = match working.node(n).kind() {
                NodeKind::Text(v) => {
                    let p = working.node(n).parent().expect("text parent");
                    let Some(tag) = working.element_name(p) else {
                        continue;
                    };
                    if tag == DECOY_TAG {
                        continue;
                    }
                    (tag.to_owned(), v.clone())
                }
                NodeKind::Attribute(t, v) => (format!("@{}", working.tag_name(*t)), v.clone()),
                NodeKind::Element(_) => continue,
            };
            let ciphers_scale = self.value_ciphers_for_insert(&attr, &value, &mut rng)?;
            let enc_attr = cipher.encrypt(&attr);
            for (c, scale) in ciphers_scale {
                for _ in 0..scale {
                    value_entries.push((enc_attr.clone(), c, b));
                }
            }
        }

        Ok(InsertDelta {
            parent: slot.parent,
            visible_fragment: visible.to_xml(),
            blocks,
            dsi_entries,
            block_entries,
            value_entries,
        })
    }

    /// Deletes every subtree matching `query` (in-process link).
    pub fn delete(&self, server: &mut Server, query: &str) -> Result<DeleteOutcome, CoreError> {
        let mut link = crate::transport::InProcess::exclusive(server);
        self.delete_via(&mut link, query)
    }

    /// [`Client::delete`] over an arbitrary transport.
    pub fn delete_via(
        &self,
        transport: &mut dyn crate::transport::Transport,
        query: &str,
    ) -> Result<DeleteOutcome, CoreError> {
        let tq = self.translate(query)?;
        let sq = tq
            .server_query
            .ok_or_else(|| CoreError::Query("delete query not server-evaluable".into()))?;
        transport.delete_where(&sq)
    }

    /// Encryption targets for a new record under the stored policy.
    fn policy_targets(&self, record: &Document) -> Vec<NodeId> {
        let mut roots: BTreeSet<NodeId> = BTreeSet::new();
        for p in &self.state().scheme_paths {
            for n in eval_document(record, p) {
                let el = match record.node(n).kind() {
                    NodeKind::Element(_) => n,
                    _ => record.node(n).parent().expect("non-root binding"),
                };
                let el = if self.state().lift_to_parent {
                    record.node(el).parent().unwrap_or(el)
                } else {
                    el
                };
                roots.insert(el);
            }
        }
        // Drop nested targets.
        roots
            .iter()
            .copied()
            .filter(|&n| !record.ancestors(n).iter().any(|a| roots.contains(a)))
            .collect()
    }

    /// Ciphertexts (with scale) for one inserted occurrence of `value`.
    fn value_ciphers_for_insert(
        &mut self,
        attr: &str,
        value: &str,
        rng: &mut StdRng,
    ) -> Result<Vec<(u128, u32)>, CoreError> {
        if !self.state().opess.contains_key(attr) {
            // First encrypted occurrence of this attribute: fresh plan.
            let codec = ValueCodec::build(&[value]);
            let v = codec
                .encode(value)
                .ok_or_else(|| CoreError::Opess(format!("unencodable value for {attr}")))?;
            let plan = OpessPlan::build(&[(v, 1)], self.state().keys.ope_key(attr), rng)
                .map_err(|e| CoreError::Opess(e.to_string()))?;
            let ciphers: Vec<(u128, u32)> = plan
                .entries()
                .iter()
                .flat_map(|e| e.chunks.iter().map(move |c| (c.ciphertext, e.scale)))
                .collect();
            self.state_mut()
                .opess
                .insert(attr.to_owned(), OpessAttr { plan, codec });
            return Ok(ciphers);
        }
        let opess = &self.state().opess[attr];
        let v = opess
            .codec
            .encode_query(value)
            .ok_or_else(|| CoreError::Opess(format!("unencodable value for {attr}")))?;
        // Existing value: reuse one of its chunks; new value: a fresh band.
        if let Some(entry) = opess.plan.entries().iter().find(|e| e.plaintext == v) {
            let j = (rng.gen_range(0..entry.chunks.len() as u32)) as usize;
            Ok(vec![(entry.chunks[j].ciphertext, entry.scale)])
        } else {
            let scale = rng.gen_range(1..=10);
            Ok(opess
                .plan
                .insert_ciphertexts(v)
                .into_iter()
                .map(|c| (c, scale))
                .collect())
        }
    }
}

/// Builds the annotated visible fragment and the DSI entry list for an
/// inserted record (markers for blocks, `_exq_iv` annotations everywhere).
#[allow(clippy::too_many_arguments)]
fn build_insert_fragment(
    working: &Document,
    node: NodeId,
    vis_parent: Option<NodeId>,
    block_of: &[Option<u32>],
    labeling: &DsiLabeling,
    cipher: &exq_crypto::TagCipher,
    visible: &mut Document,
    dsi_entries: &mut Vec<(String, Interval)>,
) {
    let iv = labeling.interval(node).expect("labeled");
    let iv_str = format!("{},{}", iv.lo, iv.hi);
    if let Some(b) = block_of[node.index()] {
        let in_block_root = working
            .node(node)
            .parent()
            .map(|p| block_of[p.index()] != Some(b))
            .unwrap_or(true);
        if in_block_root {
            // Marker in the visible fragment.
            let marker = visible.add_element(vis_parent, BLOCK_MARKER_TAG);
            visible.add_attr(marker, BLOCK_ID_ATTR, &b.to_string());
            visible.add_attr(marker, IV_ATTR, &iv_str);
        }
        // DSI entries for block internals (encrypted tags, no grouping).
        match working.node(node).kind() {
            NodeKind::Element(t) => {
                let name = working.tag_name(*t).to_owned();
                dsi_entries.push((cipher.encrypt(&name), iv));
                for &a in working.node(node).attrs() {
                    if let NodeKind::Attribute(at, _) = working.node(a).kind() {
                        let an = format!("@{}", working.tag_name(*at));
                        let aiv = labeling.interval(a).expect("attr labeled");
                        dsi_entries.push((cipher.encrypt(&an), aiv));
                    }
                }
                for &c in working.node(node).children() {
                    build_insert_fragment(
                        working,
                        c,
                        None,
                        block_of,
                        labeling,
                        cipher,
                        visible,
                        dsi_entries,
                    );
                }
            }
            _ => { /* text inside blocks carries no table entry */ }
        }
        return;
    }
    match working.node(node).kind() {
        NodeKind::Element(t) => {
            let name = working.tag_name(*t).to_owned();
            let el = visible.add_element(vis_parent, &name);
            visible.add_attr(el, IV_ATTR, &iv_str);
            dsi_entries.push((name, iv));
            for &a in working.node(node).attrs() {
                if let NodeKind::Attribute(at, v) = working.node(a).kind() {
                    let an = working.tag_name(*at).to_owned();
                    visible.add_attr(el, &an, v);
                    let aiv = labeling.interval(a).expect("attr labeled");
                    visible.add_attr(
                        el,
                        &format!("{IV_ATTR}_{an}"),
                        &format!("{},{}", aiv.lo, aiv.hi),
                    );
                    dsi_entries.push((format!("@{an}"), aiv));
                }
            }
            for &c in working.node(node).children() {
                build_insert_fragment(
                    working,
                    c,
                    Some(el),
                    block_of,
                    labeling,
                    cipher,
                    visible,
                    dsi_entries,
                );
            }
        }
        NodeKind::Text(v) => {
            if let Some(p) = vis_parent {
                visible.add_text(p, v);
            }
        }
        NodeKind::Attribute(..) => unreachable!("attributes handled by their element"),
    }
}
