//! The client↔server wire protocol: translated queries and responses.
//!
//! A translated query ([`ServerQuery`], the `Qs` of Figure 1) is a tree
//! pattern whose tags are already in server-visible form (plaintext for
//! visible nodes, Vernam ciphertext for block-internal nodes) and whose
//! value predicates are already OPESS ciphertext ranges (Figure 7). The
//! server never sees plaintext sensitive tags or values.

use exq_crypto::{SealedBlock, ValueRange};
use exq_xpath::{CmpOp, Literal};
use std::time::Duration;

/// Axes the server can evaluate over DSI intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SAxis {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
}

/// One translated step.
#[derive(Debug, Clone)]
pub struct SStep {
    pub axis: SAxis,
    /// DSI-table keys to union; empty means wildcard (any labeled node).
    pub tags: Vec<String>,
    pub preds: Vec<SPred>,
}

/// A translated predicate.
#[derive(Debug, Clone)]
pub enum SPred {
    /// Structural existence of a relative pattern.
    Exists(Vec<SStep>),
    /// A value comparison at the end of a relative pattern. Either side (or
    /// both, when the attribute occurs both inside and outside blocks) may
    /// be present; the predicate holds if any side matches.
    Value {
        path: Vec<SStep>,
        /// Encrypted side: B-tree attribute key + ciphertext range.
        range: Option<(String, ValueRange)>,
        /// Plaintext side: comparison evaluated on the visible document.
        plain: Option<(CmpOp, Literal)>,
    },
}

/// A fully translated query.
#[derive(Debug, Clone)]
pub struct ServerQuery {
    pub steps: Vec<SStep>,
    /// The anchor step (see `client::translate`): the server returns, per
    /// anchor match, the ancestor chain plus the anchor's full region.
    pub anchor: usize,
}

impl ServerQuery {
    /// Approximate wire size in bytes (for transmission accounting).
    pub fn wire_size(&self) -> usize {
        fn steps_size(steps: &[SStep]) -> usize {
            steps
                .iter()
                .map(|s| {
                    4 + s.tags.iter().map(String::len).sum::<usize>()
                        + s.preds
                            .iter()
                            .map(|p| match p {
                                SPred::Exists(q) => 2 + steps_size(q),
                                SPred::Value { path, range, plain } => {
                                    2 + steps_size(path)
                                        + range.as_ref().map_or(0, |(k, _)| k.len() + 32)
                                        + plain.as_ref().map_or(0, |(_, l)| l.as_text().len() + 2)
                                }
                            })
                            .sum::<usize>()
                })
                .sum()
        }
        8 + steps_size(&self.steps)
    }
}

/// The server's answer: a pruned visible document plus the encrypted blocks
/// the client must decrypt.
#[derive(Debug, Clone)]
pub struct ServerResponse {
    /// Serialized pruned visible document (may be empty when nothing
    /// matched).
    pub pruned_xml: String,
    /// Sealed blocks referenced by the pruned document.
    pub blocks: Vec<SealedBlock>,
    /// Time the server spent translating (DSI lookups) — §7.2's "query
    /// translation time on server".
    pub translate_time: Duration,
    /// Time the server spent on structural joins, B-tree lookups, and
    /// response assembly.
    pub process_time: Duration,
}

impl ServerResponse {
    /// Bytes shipped back to the client.
    pub fn payload_bytes(&self) -> usize {
        self.pruned_xml.len()
            + self
                .blocks
                .iter()
                .map(SealedBlock::stored_size)
                .sum::<usize>()
    }
}

impl std::fmt::Display for ServerQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.axis {
            SAxis::Child => write!(f, "/")?,
            SAxis::Descendant => write!(f, "//")?,
            SAxis::DescendantOrSelf => write!(f, "/descendant-or-self::")?,
            SAxis::Attribute => write!(f, "/@")?,
        }
        match self.tags.as_slice() {
            [] => write!(f, "*")?,
            [one] => write!(f, "{one}")?,
            many => write!(f, "({})", many.join("|"))?,
        }
        for p in &self.preds {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn steps(f: &mut std::fmt::Formatter<'_>, s: &[SStep]) -> std::fmt::Result {
            write!(f, ".")?;
            for st in s {
                write!(f, "{st}")?;
            }
            Ok(())
        }
        match self {
            SPred::Exists(s) => {
                write!(f, "[")?;
                steps(f, s)?;
                write!(f, "]")
            }
            SPred::Value { path, range, plain } => {
                write!(f, "[")?;
                steps(f, path)?;
                if let Some((attr, r)) = range {
                    write!(f, " in {attr}:[{:x}..{:x}]", r.lo, r.hi)?;
                }
                if let Some((op, lit)) = plain {
                    write!(f, " {} {}", op.as_str(), lit)?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_grows_with_query() {
        let small = ServerQuery {
            steps: vec![SStep {
                axis: SAxis::Descendant,
                tags: vec!["a".into()],
                preds: vec![],
            }],
            anchor: 0,
        };
        let big = ServerQuery {
            steps: vec![
                SStep {
                    axis: SAxis::Descendant,
                    tags: vec!["patient".into()],
                    preds: vec![SPred::Value {
                        path: vec![SStep {
                            axis: SAxis::Attribute,
                            tags: vec!["X123456".into()],
                            preds: vec![],
                        }],
                        range: Some(("X95SER".into(), ValueRange { lo: 0, hi: 10 })),
                        plain: None,
                    }],
                },
                SStep {
                    axis: SAxis::Child,
                    tags: vec!["U84573".into()],
                    preds: vec![],
                },
            ],
            anchor: 0,
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn display_renders_translated_query() {
        let q = ServerQuery {
            steps: vec![
                SStep {
                    axis: SAxis::Descendant,
                    tags: vec!["patient".into()],
                    preds: vec![SPred::Value {
                        path: vec![SStep {
                            axis: SAxis::Attribute,
                            tags: vec!["XTY0POA".into()],
                            preds: vec![],
                        }],
                        range: Some(("X95SER".into(), ValueRange { lo: 1, hi: 255 })),
                        plain: None,
                    }],
                },
                SStep {
                    axis: SAxis::Descendant,
                    tags: vec!["XU84573".into()],
                    preds: vec![],
                },
            ],
            anchor: 0,
        };
        let s = q.to_string();
        assert!(s.contains("//patient["));
        assert!(s.contains("XU84573"));
        assert!(s.contains("X95SER:[1..ff]"));
    }

    #[test]
    fn payload_accounts_blocks() {
        let r = ServerResponse {
            pruned_xml: "<r/>".into(),
            blocks: vec![],
            translate_time: Duration::ZERO,
            process_time: Duration::ZERO,
        };
        assert_eq!(r.payload_bytes(), 4);
    }
}
