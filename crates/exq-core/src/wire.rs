//! The client↔server wire protocol: translated queries and responses.
//!
//! A translated query ([`ServerQuery`], the `Qs` of Figure 1) is a tree
//! pattern whose tags are already in server-visible form (plaintext for
//! visible nodes, Vernam ciphertext for block-internal nodes) and whose
//! value predicates are already OPESS ciphertext ranges (Figure 7). The
//! server never sees plaintext sensitive tags or values.

use exq_crypto::{SealedBlock, ValueRange};
use exq_xpath::{CmpOp, Literal};
use std::sync::Arc;
use std::time::Duration;

/// Axes the server can evaluate over DSI intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SAxis {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
}

/// One translated step.
#[derive(Debug, Clone, PartialEq)]
pub struct SStep {
    pub axis: SAxis,
    /// DSI-table keys to union; empty means wildcard (any labeled node).
    pub tags: Vec<String>,
    pub preds: Vec<SPred>,
}

/// A translated predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum SPred {
    /// Structural existence of a relative pattern.
    Exists(Vec<SStep>),
    /// A value comparison at the end of a relative pattern. Either side (or
    /// both, when the attribute occurs both inside and outside blocks) may
    /// be present; the predicate holds if any side matches.
    Value {
        path: Vec<SStep>,
        /// Encrypted side: B-tree attribute key + ciphertext range.
        range: Option<(String, ValueRange)>,
        /// Plaintext side: comparison evaluated on the visible document.
        plain: Option<(CmpOp, Literal)>,
    },
}

/// A fully translated query.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerQuery {
    pub steps: Vec<SStep>,
    /// The anchor step (see `client::translate`): the server returns, per
    /// anchor match, the ancestor chain plus the anchor's full region.
    pub anchor: usize,
}

impl ServerQuery {
    /// Exact wire size in bytes: the length of the encoded `Query` frame
    /// this query travels in (header and framing fields included). A
    /// `Query` frame's payload is exactly the query's own encoding.
    pub fn wire_size(&self) -> usize {
        use crate::codec::WireCodec;
        crate::codec::FRAME_HEADER_LEN + crate::codec::FRAME_EXTRA_LEN + self.encoded_len()
    }
}

/// The server's answer: a pruned visible document plus the encrypted blocks
/// the client must decrypt.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerResponse {
    /// Serialized pruned visible document (may be empty when nothing
    /// matched).
    pub pruned_xml: String,
    /// Sealed blocks referenced by the pruned document. `Arc`-shared so
    /// response assembly, the response cache, and the naive path never
    /// copy ciphertext payloads (`Arc<T>: PartialEq` compares contents,
    /// so response equality is unchanged).
    pub blocks: Vec<Arc<SealedBlock>>,
    /// Time the server spent translating (DSI lookups) — §7.2's "query
    /// translation time on server".
    pub translate_time: Duration,
    /// Time the server spent on structural joins, B-tree lookups, and
    /// response assembly. On a response-cache hit this is the (real,
    /// nonzero) time spent probing the cache and assembling the reply.
    pub process_time: Duration,
    /// True when this response was served from the server's response cache
    /// rather than recomputed — lets benchmarks and logs tell hits from
    /// misses instead of inferring them from suspiciously small timings.
    pub served_from_cache: bool,
    /// Server-side telemetry spans for this query, populated only when the
    /// request carried a trace id. The client re-parents these under its
    /// roundtrip span to stitch one client+server trace tree.
    pub spans: Vec<crate::telemetry::SpanRec>,
}

impl ServerResponse {
    /// Exact bytes shipped back to the client: the encoded `Answer` frame
    /// length (header and framing fields included).
    pub fn payload_bytes(&self) -> usize {
        use crate::codec::WireCodec;
        crate::codec::FRAME_HEADER_LEN + crate::codec::FRAME_EXTRA_LEN + self.encoded_len()
    }
}

impl std::fmt::Display for ServerQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.axis {
            SAxis::Child => write!(f, "/")?,
            SAxis::Descendant => write!(f, "//")?,
            SAxis::DescendantOrSelf => write!(f, "/descendant-or-self::")?,
            SAxis::Attribute => write!(f, "/@")?,
        }
        match self.tags.as_slice() {
            [] => write!(f, "*")?,
            [one] => write!(f, "{one}")?,
            many => write!(f, "({})", many.join("|"))?,
        }
        for p in &self.preds {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for SPred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn steps(f: &mut std::fmt::Formatter<'_>, s: &[SStep]) -> std::fmt::Result {
            write!(f, ".")?;
            for st in s {
                write!(f, "{st}")?;
            }
            Ok(())
        }
        match self {
            SPred::Exists(s) => {
                write!(f, "[")?;
                steps(f, s)?;
                write!(f, "]")
            }
            SPred::Value { path, range, plain } => {
                write!(f, "[")?;
                steps(f, path)?;
                if let Some((attr, r)) = range {
                    write!(f, " in {attr}:[{:x}..{:x}]", r.lo, r.hi)?;
                }
                if let Some((op, lit)) = plain {
                    write!(f, " {} {}", op.as_str(), lit)?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_grows_with_query() {
        let small = ServerQuery {
            steps: vec![SStep {
                axis: SAxis::Descendant,
                tags: vec!["a".into()],
                preds: vec![],
            }],
            anchor: 0,
        };
        let big = ServerQuery {
            steps: vec![
                SStep {
                    axis: SAxis::Descendant,
                    tags: vec!["patient".into()],
                    preds: vec![SPred::Value {
                        path: vec![SStep {
                            axis: SAxis::Attribute,
                            tags: vec!["X123456".into()],
                            preds: vec![],
                        }],
                        range: Some(("X95SER".into(), ValueRange { lo: 0, hi: 10 })),
                        plain: None,
                    }],
                },
                SStep {
                    axis: SAxis::Child,
                    tags: vec!["U84573".into()],
                    preds: vec![],
                },
            ],
            anchor: 0,
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn display_renders_translated_query() {
        let q = ServerQuery {
            steps: vec![
                SStep {
                    axis: SAxis::Descendant,
                    tags: vec!["patient".into()],
                    preds: vec![SPred::Value {
                        path: vec![SStep {
                            axis: SAxis::Attribute,
                            tags: vec!["XTY0POA".into()],
                            preds: vec![],
                        }],
                        range: Some(("X95SER".into(), ValueRange { lo: 1, hi: 255 })),
                        plain: None,
                    }],
                },
                SStep {
                    axis: SAxis::Descendant,
                    tags: vec!["XU84573".into()],
                    preds: vec![],
                },
            ],
            anchor: 0,
        };
        let s = q.to_string();
        assert!(s.contains("//patient["));
        assert!(s.contains("XU84573"));
        assert!(s.contains("X95SER:[1..ff]"));
    }

    #[test]
    fn payload_bytes_is_exact_frame_length() {
        use crate::codec::Message;
        let empty = ServerResponse {
            pruned_xml: "<r/>".into(),
            blocks: vec![],
            translate_time: Duration::ZERO,
            process_time: Duration::ZERO,
            served_from_cache: false,
            spans: vec![],
        };
        // payload_bytes == the frame this response actually travels in.
        assert_eq!(
            empty.payload_bytes(),
            Message::Answer(empty.clone()).encode_frame().len()
        );
        let with_block = ServerResponse {
            blocks: vec![Arc::new(SealedBlock {
                id: 0,
                nonce: [0; 12],
                ciphertext: vec![0xA5; 100],
                tag: [0; 16],
            })],
            ..empty.clone()
        };
        assert_eq!(
            with_block.payload_bytes(),
            Message::Answer(with_block.clone()).encode_frame().len()
        );
        assert!(with_block.payload_bytes() > empty.payload_bytes() + 100);
    }

    #[test]
    fn wire_size_is_exact_frame_length() {
        use crate::codec::Message;
        let q = ServerQuery {
            steps: vec![SStep {
                axis: SAxis::Descendant,
                tags: vec!["a".into()],
                preds: vec![],
            }],
            anchor: 0,
        };
        assert_eq!(
            q.wire_size(),
            Message::Query(q.clone()).encode_frame().len()
        );
    }
}
