//! Seeded fault injection for the transport layer.
//!
//! Two injectors, both deterministic from a seed + rate schedule so every
//! failure mode is reproducible in tests:
//!
//! * [`FaultTransport`] — wraps any [`Transport`] and injects failures at
//!   the message level: requests lost before delivery, replies lost after
//!   the server applied the request (the case that makes at-most-once
//!   semantics interesting), single-bit frame corruption, and stalls. A
//!   failure leaves the link *broken* — further roundtrips fail until
//!   [`Reconnect::reconnect`], exactly like a dead socket.
//! * [`ChaosProxy`] — a real TCP forwarder that cuts, corrupts, chops, and
//!   stalls the byte stream between a live client and server, for
//!   socket-level chaos tests and the serve→kill→reconnect smoke test
//!   (its upstream can be re-pointed at a restarted server).
//!
//! The RNG is [`SplitMix64`]: tiny, seedable, and shared with the retry
//! layer's jitter so the whole fault schedule derives from one seed.

use crate::codec::Message;
use crate::error::CoreError;
use crate::telemetry::{self, Counter};
use crate::transport::{LinkStats, Reconnect, Transport};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

fn faults_injected() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| telemetry::counter("exq_faults_injected_total"))
}

// ------------------------------------------------------------------- rng --

/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA 2014). Used for
/// fault schedules and retry jitter — never for cryptography.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One Bernoulli trial with probability `rate` (clamped to `[0, 1]`).
    pub fn chance(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.next_f64() < rate
    }

    /// Uniform in `[0, bound)`; `0` when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

// ---------------------------------------------------------- fault config --

/// Per-roundtrip fault probabilities for [`FaultTransport`]. All rates are
/// independent Bernoulli trials in `[0, 1]`, drawn in a fixed order from
/// the seeded RNG so a given seed always yields the same schedule.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// RNG seed; the entire fault schedule is a pure function of it.
    pub seed: u64,
    /// Probability the request is lost before reaching the server: the
    /// server never sees it (a connect reset mid-send).
    pub drop_request_rate: f64,
    /// Probability the reply is lost after the server processed the
    /// request — the dangerous half: the work happened, the client can't
    /// know. Retried mutations hit the replay table here.
    pub drop_response_rate: f64,
    /// Probability the reply frame suffers a single bit flip (caught by
    /// the frame checksum, surfacing as a codec error).
    pub corrupt_rate: f64,
    /// Probability a roundtrip stalls for [`FaultConfig::stall`] first.
    pub stall_rate: f64,
    /// Injected latency for stall faults.
    pub stall: Duration,
}

impl FaultConfig {
    /// A schedule with every rate zero — useful as a baseline.
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_request_rate: 0.0,
            drop_response_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(1),
        }
    }

    /// A uniform schedule: every fault kind at `rate`.
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_request_rate: rate,
            drop_response_rate: rate,
            corrupt_rate: rate,
            stall_rate: rate,
            stall: Duration::from_millis(1),
        }
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    pub dropped_requests: u64,
    pub dropped_responses: u64,
    pub corrupted: u64,
    pub stalled: u64,
}

impl FaultTally {
    pub fn total(&self) -> u64 {
        self.dropped_requests + self.dropped_responses + self.corrupted + self.stalled
    }
}

// ------------------------------------------------------- fault transport --

/// A [`Transport`] wrapper that injects seeded faults around the inner
/// link. After a drop fault the wrapper is *broken*: every roundtrip fails
/// with a transport error until [`Reconnect::reconnect`] — mirroring a TCP
/// link whose socket died, so the retry layer's reconnect path is exercised
/// for real.
pub struct FaultTransport<T> {
    inner: T,
    config: FaultConfig,
    rng: SplitMix64,
    broken: bool,
    tally: FaultTally,
}

impl<T: Transport> FaultTransport<T> {
    pub fn new(inner: T, config: FaultConfig) -> FaultTransport<T> {
        let rng = SplitMix64::new(config.seed);
        FaultTransport {
            inner,
            config,
            rng,
            broken: false,
            tally: FaultTally::default(),
        }
    }

    /// Counts of faults injected so far.
    pub fn tally(&self) -> FaultTally {
        self.tally
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn break_link(&mut self, what: &str) -> CoreError {
        faults_injected().inc();
        self.broken = true;
        CoreError::Transport(format!("injected fault: {what}"))
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError> {
        if self.broken {
            return Err(CoreError::Transport(
                "injected fault: link broken (reconnect required)".into(),
            ));
        }
        // Fixed draw order — stall, drop-request, deliver, drop-response,
        // corrupt — keeps the schedule a pure function of the seed.
        if self.rng.chance(self.config.stall_rate) {
            self.tally.stalled += 1;
            faults_injected().inc();
            thread::sleep(self.config.stall);
        }
        if self.rng.chance(self.config.drop_request_rate) {
            self.tally.dropped_requests += 1;
            return Err(self.break_link("request lost before delivery"));
        }
        let reply = self.inner.roundtrip(req)?;
        if self.rng.chance(self.config.drop_response_rate) {
            self.tally.dropped_responses += 1;
            return Err(self.break_link("response lost after delivery"));
        }
        if self.rng.chance(self.config.corrupt_rate) {
            self.tally.corrupted += 1;
            faults_injected().inc();
            // Re-encode the reply, flip one bit, and decode: the checksum
            // (or framing) must catch it, surfacing a typed codec error —
            // never a silently different answer.
            let mut frame = reply.encode_frame();
            let pos = self.rng.below(frame.len() as u64) as usize;
            let bit = self.rng.below(8) as u8;
            frame[pos] ^= 1 << bit;
            return match Message::decode_frame(&frame) {
                // A flip the codec can't distinguish from a valid frame
                // would be a checksum collision; with CRC32 over the whole
                // frame a single-bit flip is always caught.
                Ok(m) => Ok(m),
                Err(e) => Err(e.into()),
            };
        }
        Ok(reply)
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }

    fn set_next_request_id(&mut self, id: u64) {
        self.inner.set_next_request_id(id);
    }
}

impl<T: Reconnect> Reconnect for FaultTransport<T> {
    fn reconnect(&mut self) -> Result<(), CoreError> {
        self.inner.reconnect()?;
        self.broken = false;
        Ok(())
    }
}

// ------------------------------------------------------------ chaos proxy --

/// Byte-stream fault probabilities for [`ChaosProxy`], applied per chunk
/// pumped in either direction.
#[derive(Debug, Clone)]
pub struct ProxyFaults {
    /// RNG seed (each pump thread derives its own stream from it).
    pub seed: u64,
    /// Probability a chunk triggers a connection cut.
    pub cut_rate: f64,
    /// Probability one bit of a chunk is flipped.
    pub corrupt_rate: f64,
    /// Probability a chunk is delayed by [`ProxyFaults::stall`].
    pub stall_rate: f64,
    /// Injected per-chunk delay for stall faults.
    pub stall: Duration,
}

impl ProxyFaults {
    /// A transparent proxy: no faults.
    pub fn none(seed: u64) -> ProxyFaults {
        ProxyFaults {
            seed,
            cut_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(1),
        }
    }
}

/// A TCP forwarder between clients and an upstream server that injects
/// byte-level faults. The upstream can be swapped at runtime
/// ([`ChaosProxy::set_upstream`]) so a client holding the proxy address can
/// survive a server restart on a new port — the serve→kill→reconnect smoke
/// test in CI drives exactly that.
pub struct ChaosProxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    faults: ProxyFaults,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts forwarding to `upstream`.
    pub fn start(upstream: SocketAddr, faults: ProxyFaults) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = Arc::new(Mutex::new(upstream));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let upstream = Arc::clone(&upstream);
            let stop = Arc::clone(&stop);
            let faults = faults.clone();
            thread::spawn(move || {
                let mut conn_seq: u64 = 0;
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(client) = conn else { continue };
                    conn_seq += 1;
                    let target = match upstream.lock() {
                        Ok(guard) => *guard,
                        Err(poisoned) => *poisoned.into_inner(),
                    };
                    let Ok(server) = TcpStream::connect_timeout(&target, Duration::from_secs(2))
                    else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    spawn_pumps(client, server, &faults, conn_seq, &stop);
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            upstream,
            faults,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — what clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Re-points new connections at a different upstream (existing pumps
    /// keep their old peer until they die).
    pub fn set_upstream(&self, upstream: SocketAddr) {
        match self.upstream.lock() {
            Ok(mut guard) => *guard = upstream,
            Err(poisoned) => *poisoned.into_inner() = upstream,
        }
    }

    /// The configured fault schedule.
    pub fn faults(&self) -> &ProxyFaults {
        &self.faults
    }

    /// Stops accepting and joins the accept thread. Live pump threads wind
    /// down on their own once either side closes.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Starts the two pump threads for one proxied connection. Each direction
/// gets its own RNG stream derived from the seed and connection number, so
/// fault placement is deterministic per (seed, connection, direction).
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    faults: &ProxyFaults,
    conn_seq: u64,
    stop: &Arc<AtomicBool>,
) {
    let c2 = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let s2 = match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    for (src, dst, dir) in [(client, s2, 0u64), (server, c2, 1u64)] {
        let faults = faults.clone();
        let stop = Arc::clone(stop);
        let seed = faults
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(conn_seq * 2 + dir);
        thread::spawn(move || pump(src, dst, faults, SplitMix64::new(seed), stop));
    }
}

/// Copies bytes `src` → `dst`, rolling the fault dice per chunk. Returns
/// (closing both directions) on EOF, error, cut fault, or proxy shutdown.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    faults: ProxyFaults,
    mut rng: SplitMix64,
    stop: Arc<AtomicBool>,
) {
    // Short read timeouts keep the pump responsive to shutdown.
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if rng.chance(faults.stall_rate) {
            faults_injected().inc();
            thread::sleep(faults.stall);
        }
        if rng.chance(faults.cut_rate) {
            faults_injected().inc();
            // A mid-stream cut: possibly forward a partial prefix first,
            // then kill the connection — the peer sees a truncated frame.
            let keep = rng.below(n as u64 + 1) as usize;
            if keep > 0 {
                let _ = dst.write_all(&buf[..keep]);
                let _ = dst.flush();
            }
            break;
        }
        if rng.chance(faults.corrupt_rate) {
            faults_injected().inc();
            let pos = rng.below(n as u64) as usize;
            let bit = rng.below(8) as u8;
            buf[pos] ^= 1 << bit;
        }
        if dst.write_all(&buf[..n]).and_then(|()| dst.flush()).is_err() {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge immediately.
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64());
        // f64 draws stay in [0, 1).
        let mut d = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = d.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_edges() {
        let mut r = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
        assert_eq!(r.below(0), 0);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
        }
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        // Two RNGs with the same seed roll the same faults in the same
        // order — the property the chaos suite depends on.
        let cfg = FaultConfig::uniform(99, 0.3);
        let mut a = SplitMix64::new(cfg.seed);
        let mut b = SplitMix64::new(cfg.seed);
        let rolls_a: Vec<bool> = (0..64).map(|_| a.chance(0.3)).collect();
        let rolls_b: Vec<bool> = (0..64).map(|_| b.chance(0.3)).collect();
        assert_eq!(rolls_a, rolls_b);
        assert!(rolls_a.iter().any(|&x| x));
        assert!(rolls_a.iter().any(|&x| !x));
    }
}
