//! The data-owner side: block encryption, decoys, and server metadata
//! construction (§4.1, §5).
//!
//! [`encrypt_database`] applies an [`EncryptionScheme`] to a document and
//! produces everything in Figure 1's data flow:
//!
//! * the **visible document** — the original tree with each encryption block
//!   replaced by an opaque `<_exq_enc id="…"/>` marker;
//! * the **sealed blocks** — each target subtree (plus decoy, §4.1)
//!   serialized and ChaCha20-sealed;
//! * the **server metadata** (§5): the DSI index table with Vernam-encrypted
//!   tags and same-tag adjacent grouping for block-internal nodes, the
//!   encryption block table, and one OPESS value index (B-tree) per
//!   encrypted leaf attribute;
//! * the **client state**: key chain, the encrypted/plain tag vocabularies,
//!   and the OPESS plans + categorical codecs needed for query translation.

use crate::error::CoreError;
use crate::scheme::EncryptionScheme;
use exq_crypto::{seal_block, KeyChain, OpessPlan, SealedBlock};
use exq_index::{
    dsi::{DsiLabeling, Interval},
    BTree, BlockTable, DsiIndexTable,
};
use exq_xml::{Document, NodeId, NodeKind};
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Marker tag for an encrypted block in the visible document.
pub const BLOCK_MARKER_TAG: &str = "_exq_enc";
/// Attribute carrying the block id on a marker.
pub const BLOCK_ID_ATTR: &str = "id";
/// Tag of decoy children inserted into leaf blocks (§4.1).
pub const DECOY_TAG: &str = "_exq_decoy";

/// Server-side metadata (the `M` of Figure 1).
#[derive(Debug, Clone, Default)]
pub struct ServerMetadata {
    pub dsi_table: DsiIndexTable,
    pub block_table: BlockTable,
    /// Per-attribute OPESS value index; keys are the server-visible
    /// (Vernam-encrypted) attribute names.
    pub value_indexes: HashMap<String, BTree>,
}

impl ServerMetadata {
    /// Total metadata entries (structural + value) — the index-size metric.
    pub fn entry_count(&self) -> usize {
        self.dsi_table.entry_count() + self.value_indexes.values().map(BTree::len).sum::<usize>()
    }
}

/// How query-literal strings map into the OPESS numeric domain.
#[derive(Debug, Clone)]
pub enum ValueCodec {
    /// All domain values parse as numbers; encode by parsing.
    Numeric,
    /// Categorical domain: alphabetically sorted distinct values map to
    /// their rank (the paper's "client keeps the mapping between categorical
    /// values and natural numbers").
    Categorical(Vec<String>),
}

impl ValueCodec {
    /// Builds a codec from the distinct domain values.
    pub fn build(values: &[&str]) -> ValueCodec {
        if values.iter().all(|v| v.trim().parse::<f64>().is_ok()) {
            ValueCodec::Numeric
        } else {
            let mut sorted: Vec<String> = values.iter().map(|s| s.to_string()).collect();
            sorted.sort();
            sorted.dedup();
            ValueCodec::Categorical(sorted)
        }
    }

    /// Encodes a *domain* value; `None` when it cannot be represented.
    pub fn encode(&self, v: &str) -> Option<f64> {
        match self {
            ValueCodec::Numeric => v.trim().parse::<f64>().ok(),
            ValueCodec::Categorical(sorted) => sorted
                .binary_search_by(|x| x.as_str().cmp(v))
                .ok()
                .map(|i| i as f64),
        }
    }

    /// Encodes a *query* literal: absent categorical values land between
    /// their alphabetic neighbors so range translations stay correct.
    pub fn encode_query(&self, v: &str) -> Option<f64> {
        match self {
            ValueCodec::Numeric => v.trim().parse::<f64>().ok(),
            ValueCodec::Categorical(sorted) => {
                Some(match sorted.binary_search_by(|x| x.as_str().cmp(v)) {
                    Ok(i) => i as f64,
                    Err(ins) => ins as f64 - 0.5,
                })
            }
        }
    }
}

/// The client-side OPESS state for one encrypted attribute.
#[derive(Debug, Clone)]
pub struct OpessAttr {
    pub plan: OpessPlan,
    pub codec: ValueCodec,
}

/// Everything the client keeps after outsourcing (besides the keys being
/// derivable from the master key, this is small: vocabularies + OPESS
/// parameters).
#[derive(Debug, Clone)]
pub struct ClientCryptoState {
    pub keys: KeyChain,
    /// Plaintext tags (elements, and attributes as `@name`) that occur
    /// inside encryption blocks.
    pub encrypted_tags: HashSet<String>,
    /// Tags that occur outside blocks (visible to the server in plaintext).
    pub plain_tags: HashSet<String>,
    /// OPESS plan per encrypted leaf attribute (plaintext attribute name).
    pub opess: HashMap<String, OpessAttr>,
    /// The encryption policy, re-applied to inserted records: absolute
    /// paths whose bindings are encrypted, and whether to lift to parents
    /// (`sub` scheme).
    pub scheme_paths: Vec<exq_xpath::Path>,
    pub lift_to_parent: bool,
}

/// Owner-side encryption statistics (§7.4 metrics).
#[derive(Debug, Clone, Default)]
pub struct EncryptStats {
    pub encrypt_time: Duration,
    pub block_count: usize,
    /// Total sealed-block bytes including per-block envelope overhead.
    pub encrypted_bytes: usize,
    /// Serialized visible-document bytes.
    pub visible_bytes: usize,
    pub dsi_entries: usize,
    pub value_index_entries: usize,
    pub scheme_size: u64,
}

impl EncryptStats {
    /// Total bytes hosted on the server (visible + blocks), the
    /// "size of the encrypted document" of §7.4.
    pub fn hosted_bytes(&self) -> usize {
        self.encrypted_bytes + self.visible_bytes
    }
}

/// The full output of the owner-side pipeline.
#[derive(Debug, Clone)]
pub struct EncryptedOutput {
    pub visible: Document,
    /// DSI interval per visible-document arena slot (markers carry their
    /// block's representative interval).
    pub visible_intervals: Vec<Option<Interval>>,
    pub blocks: Vec<SealedBlock>,
    pub metadata: ServerMetadata,
    pub client_state: ClientCryptoState,
    pub stats: EncryptStats,
}

/// Applies `scheme` to `doc`, producing the hosted artifacts.
pub fn encrypt_database(
    doc: &Document,
    scheme: &EncryptionScheme,
    keys: &KeyChain,
    rng: &mut impl Rng,
) -> Result<EncryptedOutput, CoreError> {
    let start = Instant::now();
    doc.root().ok_or(CoreError::EmptyDocument)?;

    // 1. Working copy with decoys inserted into leaf blocks.
    let mut working = doc.clone();
    let decoy_prf = keys.decoy_prf();
    for (i, t) in scheme.targets.iter().enumerate() {
        if t.decoy {
            let decoy_el = working.add_element(Some(t.node), DECOY_TAG);
            working.add_text(decoy_el, &decoy_value(&decoy_prf, i as u64));
        }
    }

    // 2. DSI labeling of the working document (block internals included:
    //    their intervals go into the DSI table under encrypted tags).
    let labeling = DsiLabeling::assign(&working, rng);

    // 3. Block membership: node -> block id.
    let mut block_of: Vec<Option<u32>> = vec![None; arena_len(&working)];
    for (i, t) in scheme.targets.iter().enumerate() {
        for n in working.descendants(t.node) {
            block_of[n.index()] = Some(i as u32);
        }
    }

    // 4. Seal blocks.
    let block_key = keys.block_key();
    let mut blocks = Vec::with_capacity(scheme.targets.len());
    for (i, t) in scheme.targets.iter().enumerate() {
        let xml = working.node_to_xml(t.node);
        let nonce = keys.nonce("block", i as u64);
        blocks.push(seal_block(&block_key, i as u32, nonce, xml.as_bytes()));
    }

    // 5. Visible document + interval alignment.
    let mut visible = Document::new();
    let mut visible_intervals: Vec<Option<Interval>> = Vec::new();
    build_visible(
        &working,
        working.root().unwrap(),
        None,
        &block_of,
        scheme,
        &labeling,
        &mut visible,
        &mut visible_intervals,
    );

    // 6–7. DSI index table (with grouping) + block table.
    let tag_cipher = keys.tag_cipher();
    let mut dsi_table = DsiIndexTable::new();
    let mut encrypted_tags = HashSet::new();
    let mut plain_tags = HashSet::new();
    build_dsi_table(
        &working,
        working.root().unwrap(),
        &block_of,
        &labeling,
        &tag_cipher,
        &mut dsi_table,
        &mut encrypted_tags,
        &mut plain_tags,
    );
    dsi_table.seal();

    let mut block_table = BlockTable::new();
    for (i, t) in scheme.targets.iter().enumerate() {
        let rep = labeling
            .interval(t.node)
            .expect("block root must be labeled");
        block_table.add(rep, i as u32);
    }
    block_table.seal();

    // 8. OPESS value indexes over encrypted leaf values.
    let (value_indexes, opess, value_entries) =
        build_value_indexes(&working, &block_of, keys, &tag_cipher, rng)?;

    let stats = EncryptStats {
        encrypt_time: start.elapsed(),
        block_count: blocks.len(),
        encrypted_bytes: blocks.iter().map(SealedBlock::stored_size).sum(),
        visible_bytes: visible.serialized_size(),
        dsi_entries: dsi_table.entry_count(),
        value_index_entries: value_entries,
        scheme_size: scheme.size(doc),
    };

    Ok(EncryptedOutput {
        visible,
        visible_intervals,
        blocks,
        metadata: ServerMetadata {
            dsi_table,
            block_table,
            value_indexes,
        },
        client_state: ClientCryptoState {
            keys: keys.clone(),
            encrypted_tags,
            plain_tags,
            opess,
            scheme_paths: scheme.paths.clone(),
            lift_to_parent: scheme.lift_to_parent,
        },
        stats,
    })
}

fn arena_len(doc: &Document) -> usize {
    doc.iter().map(|n| n.index() + 1).max().unwrap_or(0)
}

fn decoy_value(prf: &exq_crypto::Prf, i: u64) -> String {
    const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    let mut buf = [0u8; 6];
    prf.fill(&i.to_le_bytes(), &mut buf);
    buf.iter()
        .map(|&b| ALPHA[b as usize % 26] as char)
        .collect()
}

/// Recursively builds the visible document, replacing block roots with
/// markers and aligning intervals.
#[allow(clippy::too_many_arguments)]
fn build_visible(
    working: &Document,
    node: NodeId,
    vis_parent: Option<NodeId>,
    block_of: &[Option<u32>],
    scheme: &EncryptionScheme,
    labeling: &DsiLabeling,
    visible: &mut Document,
    intervals: &mut Vec<Option<Interval>>,
) {
    let record = |intervals: &mut Vec<Option<Interval>>, vis_id: NodeId, iv: Option<Interval>| {
        if vis_id.index() >= intervals.len() {
            intervals.resize(vis_id.index() + 1, None);
        }
        intervals[vis_id.index()] = iv;
    };

    // A block root becomes a marker.
    if let Some(b) = block_of[node.index()] {
        debug_assert_eq!(scheme.targets[b as usize].node, node);
        let marker = visible.add_element(vis_parent, BLOCK_MARKER_TAG);
        visible.add_attr(marker, BLOCK_ID_ATTR, &b.to_string());
        record(intervals, marker, labeling.interval(node));
        return;
    }

    match working.node(node).kind() {
        NodeKind::Element(t) => {
            let name = working.tag_name(*t).to_owned();
            let el = visible.add_element(vis_parent, &name);
            record(intervals, el, labeling.interval(node));
            for &a in working.node(node).attrs() {
                if let NodeKind::Attribute(at, v) = working.node(a).kind() {
                    let an = working.tag_name(*at).to_owned();
                    let attr = visible.add_attr(el, &an, v);
                    record(intervals, attr, labeling.interval(a));
                }
            }
            for &c in working.node(node).children() {
                build_visible(
                    working,
                    c,
                    Some(el),
                    block_of,
                    scheme,
                    labeling,
                    visible,
                    intervals,
                );
            }
        }
        NodeKind::Text(v) => {
            let p = vis_parent.expect("text under an element");
            let txt = visible.add_text(p, v);
            record(intervals, txt, labeling.interval(node));
        }
        NodeKind::Attribute(..) => unreachable!("attributes handled with their element"),
    }
}

/// Populates the DSI index table: plaintext tags for nodes outside blocks,
/// Vernam-encrypted tags with adjacent same-tag grouping inside blocks.
#[allow(clippy::too_many_arguments)]
fn build_dsi_table(
    doc: &Document,
    node: NodeId,
    block_of: &[Option<u32>],
    labeling: &DsiLabeling,
    cipher: &exq_crypto::TagCipher,
    table: &mut DsiIndexTable,
    encrypted_tags: &mut HashSet<String>,
    plain_tags: &mut HashSet<String>,
) {
    // Attributes first (no grouping: names are unique per element).
    for &a in doc.node(node).attrs() {
        if let NodeKind::Attribute(at, _) = doc.node(a).kind() {
            let name = format!("@{}", doc.tag_name(*at));
            let iv = labeling.interval(a).expect("attribute labeled");
            if block_of[a.index()].is_some() {
                encrypted_tags.insert(name.clone());
                table.add(&cipher.encrypt(&name), iv);
            } else {
                plain_tags.insert(name.clone());
                table.add(&name, iv);
            }
        }
    }
    // The node itself.
    if let NodeKind::Element(t) = doc.node(node).kind() {
        let name = doc.tag_name(*t).to_owned();
        let iv = labeling.interval(node).expect("element labeled");
        if block_of[node.index()].is_some() {
            encrypted_tags.insert(name.clone());
        } else {
            plain_tags.insert(name.clone());
            table.add(&name, iv);
        }
        // Entry addition for block-internal elements happens in the parent's
        // grouping pass below; the only element without a parent pass is the
        // document root (relevant under the `top` scheme).
        if block_of[node.index()].is_some() && doc.node(node).parent().is_none() {
            table.add(&cipher.encrypt(&name), iv);
        }
        // Grouping pass over element children that live inside blocks:
        // runs of adjacent same-tag children in the same block merge into
        // one span interval (§5.1.1).
        let children = doc.node(node).children();
        let mut run: Option<(String, u32, Interval)> = None;
        for &c in children {
            let cur = match doc.node(c).kind() {
                NodeKind::Element(ct) if block_of[c.index()].is_some() => Some((
                    doc.tag_name(*ct).to_owned(),
                    block_of[c.index()].unwrap(),
                    labeling.interval(c).expect("child labeled"),
                )),
                _ => None,
            };
            match (&mut run, cur) {
                (Some((rt, rb, riv)), Some((ct, cb, civ))) if *rt == ct && *rb == cb => {
                    *riv = riv.span(&civ);
                }
                (prev, cur) => {
                    if let Some((rt, _, riv)) = prev.take() {
                        table.add(&cipher.encrypt(&rt), riv);
                    }
                    *prev = cur;
                }
            }
        }
        if let Some((rt, _, riv)) = run {
            table.add(&cipher.encrypt(&rt), riv);
        }
        // Recurse.
        for &c in children {
            build_dsi_table(
                doc,
                c,
                block_of,
                labeling,
                cipher,
                table,
                encrypted_tags,
                plain_tags,
            );
        }
    }
}

type ValueIndexes = (HashMap<String, BTree>, HashMap<String, OpessAttr>, usize);

/// Builds per-attribute OPESS B-trees over leaf values inside blocks.
fn build_value_indexes(
    doc: &Document,
    block_of: &[Option<u32>],
    keys: &KeyChain,
    cipher: &exq_crypto::TagCipher,
    rng: &mut impl Rng,
) -> Result<ValueIndexes, CoreError> {
    // attribute name -> [(value, block id)]
    let mut occ: HashMap<String, Vec<(String, u32)>> = HashMap::new();
    for n in doc.iter() {
        let Some(b) = block_of[n.index()] else {
            continue;
        };
        match doc.node(n).kind() {
            NodeKind::Text(v) => {
                let parent = doc.node(n).parent().expect("text has parent");
                let Some(tag) = doc.element_name(parent) else {
                    continue;
                };
                if tag == DECOY_TAG {
                    continue;
                }
                occ.entry(tag.to_owned()).or_default().push((v.clone(), b));
            }
            NodeKind::Attribute(at, v) => {
                let name = format!("@{}", doc.tag_name(*at));
                occ.entry(name).or_default().push((v.clone(), b));
            }
            NodeKind::Element(_) => {}
        }
    }

    let mut indexes = HashMap::new();
    let mut opess = HashMap::new();
    let mut total_entries = 0usize;
    // Deterministic iteration order for reproducibility.
    let mut attrs: Vec<String> = occ.keys().cloned().collect();
    attrs.sort();
    for attr in attrs {
        let occurrences = &occ[&attr];
        let distinct: Vec<&str> = {
            let mut v: Vec<&str> = occurrences.iter().map(|(s, _)| s.as_str()).collect();
            v.sort();
            v.dedup();
            v
        };
        let codec = ValueCodec::build(&distinct);
        // Histogram in the encoded domain.
        let mut hist: HashMap<u64, (f64, u32)> = HashMap::new();
        for (v, _) in occurrences {
            let Some(x) = codec.encode(v) else {
                return Err(CoreError::Opess(format!(
                    "value `{v}` of `{attr}` not encodable"
                )));
            };
            let e = hist.entry(x.to_bits()).or_insert((x, 0));
            e.1 += 1;
        }
        let hist: Vec<(f64, u32)> = hist.values().copied().collect();
        let plan = OpessPlan::build(&hist, keys.ope_key(&attr), rng)
            .map_err(|e| CoreError::Opess(e.to_string()))?;

        // Assign occurrences to chunks and fill the B-tree.
        let mut tree = BTree::new();
        // Group occurrences by encoded value.
        let mut by_value: HashMap<u64, Vec<u32>> = HashMap::new();
        for (v, b) in occurrences {
            let x = codec.encode(v).unwrap();
            by_value.entry(x.to_bits()).or_default().push(*b);
        }
        for entry in plan.entries() {
            let blocks = &by_value[&entry.plaintext.to_bits()];
            if entry.count == 1 {
                // Singleton: every chunk ciphertext points to the lone block.
                for c in &entry.chunks {
                    for _ in 0..entry.scale {
                        tree.insert(c.ciphertext, blocks[0]);
                    }
                }
                continue;
            }
            let mut it = blocks.iter();
            for c in &entry.chunks {
                for _ in 0..c.occurrences {
                    let b = *it.next().expect("chunk sizes sum to the count");
                    for _ in 0..entry.scale {
                        tree.insert(c.ciphertext, b);
                    }
                }
            }
        }
        total_entries += tree.len();
        indexes.insert(cipher.encrypt(&attr), tree);
        opess.insert(attr, OpessAttr { plan, codec });
    }
    Ok((indexes, opess, total_entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::SecurityConstraint;
    use crate::scheme::{EncryptionScheme, SchemeKind};
    use exq_crypto::open_block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn doc() -> Document {
        Document::parse(
            r#"<hospital>
                <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
                  <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
                  <insurance><policy coverage="1000000">34221</policy>
                              <policy coverage="10000">44louis</policy></insurance></patient>
                <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
                  <treat><disease>leukemia</disease><doctor>Brown</doctor></treat>
                  <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
                  <insurance><policy coverage="5000">78543</policy></insurance></patient>
               </hospital>"#,
        )
        .unwrap()
    }

    fn constraints() -> Vec<SecurityConstraint> {
        [
            "//insurance",
            "//patient:(/pname, /SSN)",
            "//patient:(/pname, //disease)",
            "//treat:(/disease, /doctor)",
        ]
        .iter()
        .map(|s| SecurityConstraint::parse(s).unwrap())
        .collect()
    }

    fn encrypt(kind: SchemeKind) -> (Document, EncryptedOutput) {
        let d = doc();
        let s = EncryptionScheme::build(&d, &constraints(), kind).unwrap();
        let keys = KeyChain::from_seed(77);
        let mut rng = StdRng::seed_from_u64(5);
        let out = encrypt_database(&d, &s, &keys, &mut rng).unwrap();
        (d, out)
    }

    #[test]
    fn blocks_decrypt_back_to_subtrees() {
        let (_, out) = encrypt(SchemeKind::Opt);
        assert!(!out.blocks.is_empty());
        let key = out.client_state.keys.block_key();
        for b in &out.blocks {
            let pt = open_block(&key, b).unwrap();
            let xml = String::from_utf8(pt).unwrap();
            Document::parse(&xml).unwrap();
        }
    }

    #[test]
    fn visible_document_has_markers_not_secrets() {
        let (_, out) = encrypt(SchemeKind::Opt);
        let xml = out.visible.to_xml();
        assert!(xml.contains(BLOCK_MARKER_TAG));
        // The node-type SC //insurance hides the whole insurance subtree.
        for secret in ["34221", "78543", "1000000", "policy", "coverage"] {
            assert!(!xml.contains(secret), "leaked {secret}");
        }
        // Association SCs require at least one endpoint hidden per pair.
        let hidden = |s: &str| !xml.contains(s);
        assert!(
            hidden("Betty") || hidden("763895"),
            "pname–SSN association leaked"
        );
        assert!(
            hidden("Betty") || hidden("diarrhea"),
            "pname–disease association leaked"
        );
        assert!(
            hidden("diarrhea") || hidden("Smith"),
            "disease–doctor association leaked"
        );
        // Non-sensitive structure stays visible.
        assert!(xml.contains("<hospital>"));
        assert!(xml.contains("<patient>"));
    }

    #[test]
    fn top_scheme_single_block() {
        let (_, out) = encrypt(SchemeKind::Top);
        assert_eq!(out.blocks.len(), 1);
        assert_eq!(out.visible.len(), 2); // marker + id attribute
    }

    #[test]
    fn dsi_table_hides_encrypted_tags() {
        let (_, out) = encrypt(SchemeKind::Opt);
        let table = &out.metadata.dsi_table;
        // pname is encrypted by every reasonable cover here.
        assert!(out.client_state.encrypted_tags.contains("pname"));
        assert!(
            table.lookup("pname").is_empty(),
            "plaintext sensitive tag in table"
        );
        let cipher = out.client_state.keys.tag_cipher();
        assert!(!table.lookup(&cipher.encrypt("pname")).is_empty());
        // hospital stays plaintext.
        assert_eq!(table.lookup("hospital").len(), 1);
    }

    #[test]
    fn block_table_has_representative_intervals() {
        let (_, out) = encrypt(SchemeKind::Opt);
        assert_eq!(out.metadata.block_table.len(), out.blocks.len());
        for (iv, id) in out.metadata.block_table.iter() {
            assert!(iv.lo < iv.hi);
            assert!((id as usize) < out.blocks.len());
        }
    }

    #[test]
    fn value_indexes_flat_histogram() {
        let (_, out) = encrypt(SchemeKind::Opt);
        assert!(!out.metadata.value_indexes.is_empty());
        for attr in out.client_state.opess.values() {
            let hist = attr.plan.split_histogram();
            let m = attr.plan.m();
            for h in hist {
                assert!(h == 1 || (m - 1..=m + 1).contains(&h));
            }
        }
    }

    #[test]
    fn decoys_inserted_into_leaf_blocks() {
        let (_, out) = encrypt(SchemeKind::Opt);
        let key = out.client_state.keys.block_key();
        let mut any_decoy = false;
        for b in &out.blocks {
            let xml = String::from_utf8(open_block(&key, b).unwrap()).unwrap();
            if xml.contains(DECOY_TAG) {
                any_decoy = true;
            }
        }
        assert!(any_decoy, "no decoys found in any block");
    }

    #[test]
    fn equal_plaintexts_seal_to_distinct_ciphertexts() {
        // The two identical <disease>diarrhea</disease> blocks must differ.
        let d = doc();
        let cs = vec![SecurityConstraint::parse("//disease").unwrap()];
        let s = EncryptionScheme::build(&d, &cs, SchemeKind::Opt).unwrap();
        let keys = KeyChain::from_seed(1);
        let mut rng = StdRng::seed_from_u64(1);
        let out = encrypt_database(&d, &s, &keys, &mut rng).unwrap();
        let diarrhea: Vec<&SealedBlock> = out.blocks.iter().collect();
        for i in 0..diarrhea.len() {
            for j in i + 1..diarrhea.len() {
                assert_ne!(diarrhea[i].ciphertext, diarrhea[j].ciphertext);
            }
        }
    }

    #[test]
    fn visible_intervals_align() {
        let (_, out) = encrypt(SchemeKind::Opt);
        for n in out.visible.iter() {
            if out.visible.element_name(n) == Some(BLOCK_MARKER_TAG) {
                let iv = out.visible_intervals[n.index()].expect("marker labeled");
                // Marker interval must be a block representative.
                assert!(out.metadata.block_table.covering_block(&iv).is_some());
            }
        }
    }

    #[test]
    fn grouping_merges_adjacent_same_tag_siblings() {
        // Both policies of patient 1 sit in one insurance block and are
        // adjacent same-tag siblings: the DSI table must hold one merged
        // interval covering both, not two.
        let (d, out) = encrypt(SchemeKind::Opt);
        let cipher = out.client_state.keys.tag_cipher();
        let policies = d.elements_by_tag("policy");
        assert_eq!(policies.len(), 3);
        let entries = out.metadata.dsi_table.lookup(&cipher.encrypt("policy"));
        assert_eq!(entries.len(), 2, "adjacent policies should be grouped");
    }

    #[test]
    fn stats_populated() {
        let (_, out) = encrypt(SchemeKind::Opt);
        assert!(out.stats.block_count > 0);
        assert!(out.stats.encrypted_bytes > 0);
        assert!(out.stats.visible_bytes > 0);
        assert!(out.stats.dsi_entries > 0);
        assert!(out.stats.value_index_entries > 0);
        assert!(out.stats.hosted_bytes() > out.stats.encrypted_bytes);
    }

    #[test]
    fn codec_numeric_and_categorical() {
        let c = ValueCodec::build(&["10", "2", "33"]);
        assert!(matches!(c, ValueCodec::Numeric));
        assert_eq!(c.encode("2"), Some(2.0));
        let c = ValueCodec::build(&["flu", "cold", "flu"]);
        match &c {
            ValueCodec::Categorical(sorted) => assert_eq!(sorted, &["cold", "flu"]),
            _ => panic!(),
        }
        assert_eq!(c.encode("cold"), Some(0.0));
        assert_eq!(c.encode("flu"), Some(1.0));
        assert_eq!(c.encode("zzz"), None);
        assert_eq!(c.encode_query("aaa"), Some(-0.5));
        assert_eq!(c.encode_query("dog"), Some(0.5));
        assert_eq!(c.encode_query("flu"), Some(1.0));
    }
}
