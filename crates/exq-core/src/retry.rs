//! Client-side retry with reconnect, backoff, and at-most-once mutations.
//!
//! [`Retry`] wraps any [`Reconnect`] transport. Each *logical* request gets
//! a stable, client-generated request id stamped on every attempt's frame;
//! the server's replay table keys on it, so a mutation whose reply was lost
//! in flight is answered from the ledger on replay instead of being applied
//! twice. Read-only requests are idempotent and simply re-run.
//!
//! What retries: transport and codec failures (the connection may be dead —
//! reconnect first), server `Busy` replies (honoring the `retry_after_ms`
//! hint), and transient error frames of those same classes. Everything else
//! — query errors, decrypt failures — is deterministic and surfaces
//! immediately. Backoff is exponential with seeded jitter
//! ([`crate::fault::SplitMix64`]), so tests are reproducible.

use crate::codec::Message;
use crate::error::CoreError;
use crate::fault::SplitMix64;
use crate::telemetry::{self, Counter};
use crate::transport::{LinkStats, Pipeline, Reconnect, Transport};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

struct RetryMetrics {
    attempts: Arc<Counter>,
    reconnects: Arc<Counter>,
    busy: Arc<Counter>,
}

fn retry_metrics() -> &'static RetryMetrics {
    static METRICS: OnceLock<RetryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RetryMetrics {
        attempts: telemetry::counter("exq_retry_attempts_total"),
        reconnects: telemetry::counter("exq_retry_reconnects_total"),
        busy: telemetry::counter("exq_retry_busy_total"),
    })
}

/// Knobs for [`Retry`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts per logical request (first try included). `1`
    /// disables retrying.
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for backoff jitter (and nothing else): fixed seed → fixed
    /// retry timing, which the chaos suite relies on.
    pub jitter_seed: u64,
    /// Ping before each replay to tell a dead server (fail fast, don't
    /// burn the budget waiting on big-query timeouts) from a slow one.
    pub ping_before_retry: bool,
}

impl RetryConfig {
    /// `max_attempts` attempts with the default backoff curve.
    pub fn with_attempts(max_attempts: u32) -> RetryConfig {
        RetryConfig {
            max_attempts,
            ..RetryConfig::default()
        }
    }
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x5EED,
            ping_before_retry: false,
        }
    }
}

/// Cumulative counts of retry activity on one [`Retry`] wrapper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts beyond the first, across all logical requests.
    pub retries: u64,
    /// Reconnects performed between attempts.
    pub reconnects: u64,
    /// `Busy` replies honored with backoff.
    pub busy: u64,
    /// Logical requests that exhausted the budget and surfaced an error.
    pub exhausted: u64,
}

/// The retrying transport wrapper. See the module docs for semantics.
pub struct Retry<T: Reconnect> {
    inner: T,
    config: RetryConfig,
    rng: SplitMix64,
    /// High bits of the request-id space for this wrapper instance, so two
    /// wrappers talking to one server don't collide ids.
    id_base: u64,
    next_seq: u64,
    stats: RetryStats,
}

impl<T: Reconnect> Retry<T> {
    pub fn new(inner: T, config: RetryConfig) -> Retry<T> {
        // Derive the id namespace from the jitter seed so runs are
        // reproducible; mix in a large odd constant so seed 0 still yields
        // nonzero ids.
        let id_base = SplitMix64::new(config.jitter_seed ^ 0xA5A5_A5A5_A5A5_A5A5).next_u64();
        let rng = SplitMix64::new(config.jitter_seed);
        Retry {
            inner,
            config,
            rng,
            id_base,
            next_seq: 0,
            stats: RetryStats::default(),
        }
    }

    /// Default config.
    pub fn with_defaults(inner: T) -> Retry<T> {
        Retry::new(inner, RetryConfig::default())
    }

    /// Retry activity so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Mutable access to the wrapped transport (tests inspect fault
    /// tallies through this).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// A fresh, never-zero request id for one logical request.
    fn next_request_id(&mut self) -> u64 {
        self.next_seq += 1;
        let id = self.id_base.wrapping_add(self.next_seq);
        if id == 0 {
            self.next_seq += 1;
            self.id_base.wrapping_add(self.next_seq)
        } else {
            id
        }
    }

    /// Exponential backoff with full jitter, floored at 1ms so attempt
    /// pacing is real even for tiny bases.
    fn backoff(&mut self, attempt: u32, floor: Duration) -> Duration {
        let base = self.config.base_backoff.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.config.max_backoff).max(floor);
        let jitter = self.rng.next_f64() * 0.5 + 0.5; // [0.5, 1.0)
        capped.mul_f64(jitter)
    }
}

/// Whether a reply that *decoded fine* still warrants a retry: `Busy`
/// sheds (with the server's pacing hint) and transient error frames of the
/// codec/transport classes. Wire codes 7 and 8 mirror
/// [`CoreError::Codec`] / [`CoreError::Transport`].
fn transient_reply(reply: &Message) -> Option<Duration> {
    match reply {
        Message::Busy { retry_after_ms } => Some(Duration::from_millis(*retry_after_ms as u64)),
        // Code 10 (`CoreError::Unavailable`) carries a retry-after hint but
        // is deliberately NOT transient: the db is degraded after a storage
        // fault and burning the budget hammering it cannot help — surface
        // the hint to the caller, who decides when to probe again.
        Message::Error(e) if e.code == 10 => None,
        Message::Error(e) if e.code == 7 || e.code == 8 => Some(Duration::ZERO),
        _ => None,
    }
}

/// Whether a roundtrip error warrants reconnect + retry. Transport and
/// codec failures may be the link's fault; everything else is
/// deterministic.
fn transient_error(err: &CoreError) -> bool {
    matches!(err, CoreError::Transport(_) | CoreError::Codec(_))
}

impl<T: Reconnect> Transport for Retry<T> {
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError> {
        let req_id = self.next_request_id();
        let attempts = self.config.max_attempts.max(1);
        let mut last_err: Option<CoreError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                retry_metrics().attempts.inc();
                // The link may be dead — re-dial before replaying. A failed
                // reconnect consumes the attempt.
                self.stats.reconnects += 1;
                retry_metrics().reconnects.inc();
                if let Err(e) = self.inner.reconnect() {
                    last_err = Some(e);
                    let pause = self.backoff(attempt - 1, Duration::ZERO);
                    thread::sleep(pause);
                    continue;
                }
                if self.config.ping_before_retry {
                    // Dead server ⇒ ping fails fast and the attempt is
                    // spent on backoff, not on a long query timeout.
                    if let Err(e) = self.inner.ping() {
                        last_err = Some(e);
                        let pause = self.backoff(attempt - 1, Duration::ZERO);
                        thread::sleep(pause);
                        continue;
                    }
                }
            }
            // Same id on every attempt: the server's replay table dedupes.
            self.inner.set_next_request_id(req_id);
            match self.inner.roundtrip(req) {
                Ok(reply) => match transient_reply(&reply) {
                    None => return Ok(reply),
                    Some(hint) => {
                        if matches!(reply, Message::Busy { .. }) {
                            self.stats.busy += 1;
                            retry_metrics().busy.inc();
                        }
                        last_err = Some(match reply {
                            Message::Error(e) => e.into_core(),
                            _ => CoreError::Transport(format!(
                                "server busy after {attempts} attempts"
                            )),
                        });
                        if attempt + 1 < attempts {
                            // Honor the server's pacing hint as a floor.
                            let pause = self.backoff(attempt, hint);
                            thread::sleep(pause);
                        }
                    }
                },
                Err(e) if transient_error(&e) => {
                    last_err = Some(e);
                    if attempt + 1 < attempts {
                        let pause = self.backoff(attempt, Duration::ZERO);
                        thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.stats.exhausted += 1;
        Err(last_err.unwrap_or_else(|| {
            CoreError::Transport(format!("retry budget exhausted after {attempts} attempts"))
        }))
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }

    fn set_next_request_id(&mut self, id: u64) {
        // The wrapper owns id assignment; an externally forced id is
        // forwarded for the next attempt only.
        self.inner.set_next_request_id(id);
    }
}

impl<T: Reconnect> Reconnect for Retry<T> {
    fn reconnect(&mut self) -> Result<(), CoreError> {
        self.inner.reconnect()
    }
}

/// The [`Retry`] semantics for a [`Pipeline`]: submits every request before
/// reading any reply, keeping N in flight, with the same safety rules as
/// the serial wrapper — each logical request keeps one stable id across
/// every resubmission (so the server's replay table dedupes mutations),
/// `Busy` replies are resubmitted after backoff honoring the pacing hint,
/// and a transport failure reconnects and resubmits everything still
/// unanswered. Replies are returned in request order.
///
/// Requests that fail deterministically (query errors, decrypt failures)
/// surface as `Message::Error` replies in their slot rather than aborting
/// the group — with N in flight there is no single failing call site.
pub fn roundtrip_pipelined(
    pipe: &mut Pipeline,
    reqs: &[Message],
    config: &RetryConfig,
) -> Result<Vec<Message>, CoreError> {
    if reqs.is_empty() {
        return Ok(Vec::new());
    }
    let mut rng = SplitMix64::new(config.jitter_seed ^ 0x9E37_79B9_7F4A_7C15);
    // Stable, distinct, never-zero ids: consecutive from a seeded base.
    let mut cursor = rng.next_u64();
    let ids: Vec<u64> = reqs
        .iter()
        .map(|_| {
            cursor = cursor.wrapping_add(1);
            if cursor == 0 {
                cursor = 1;
            }
            cursor
        })
        .collect();
    let by_id: HashMap<u64, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();

    let mut answers: Vec<Option<Message>> = vec![None; reqs.len()];
    let attempts = config.max_attempts.max(1);
    let mut last_err: Option<CoreError> = None;
    // Pacing floor carried from the strongest `Busy` hint of the last round.
    let mut busy_floor = Duration::ZERO;
    for attempt in 0..attempts {
        if attempt > 0 {
            retry_metrics().attempts.inc();
            let pause = pipeline_backoff(&mut rng, config, attempt - 1, busy_floor);
            thread::sleep(pause);
            busy_floor = Duration::ZERO;
        }
        let pending: Vec<usize> = (0..reqs.len()).filter(|&i| answers[i].is_none()).collect();
        if pending.is_empty() {
            break;
        }
        // Submit the whole unanswered set before reading anything back —
        // that is the pipelining: one flush, N frames in flight.
        let mut link_down = false;
        for &i in &pending {
            match pipe.submit_as(&reqs[i], ids[i]) {
                Ok(()) => {}
                Err(e) if transient_error(&e) => {
                    last_err = Some(e);
                    link_down = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        while !link_down && pipe.outstanding() > 0 {
            match pipe.recv() {
                Ok((id, reply)) => {
                    let Some(&i) = by_id.get(&id) else {
                        // The reply-correlation contract is broken (or the
                        // server predates id echoing): pipelining is unsafe.
                        return Err(CoreError::Transport(format!(
                            "uncorrelated reply id {id:#x}; \
                             server does not echo request ids"
                        )));
                    };
                    match transient_reply(&reply) {
                        None => answers[i] = Some(reply),
                        Some(hint) => {
                            if matches!(reply, Message::Busy { .. }) {
                                retry_metrics().busy.inc();
                            }
                            busy_floor = busy_floor.max(hint);
                            last_err = Some(match reply {
                                Message::Error(e) => e.into_core(),
                                _ => CoreError::Transport(format!(
                                    "server busy after {attempts} attempts"
                                )),
                            });
                        }
                    }
                }
                Err(e) if transient_error(&e) => {
                    last_err = Some(e);
                    link_down = true;
                }
                Err(e) => return Err(e),
            }
        }
        if link_down && attempt + 1 < attempts {
            // Re-dial; replies in flight are lost, but ids are stable, so
            // resubmission is answered from the replay ledger where it
            // matters.
            retry_metrics().reconnects.inc();
            if let Err(e) = pipe.reconnect() {
                last_err = Some(e);
            }
        }
    }
    answers
        .into_iter()
        .map(|slot| {
            slot.ok_or_else(|| {
                last_err.clone().unwrap_or_else(|| {
                    CoreError::Transport(format!(
                        "retry budget exhausted after {attempts} attempts"
                    ))
                })
            })
        })
        .collect()
}

/// Standalone mirror of [`Retry::backoff`] for the pipeline path.
fn pipeline_backoff(
    rng: &mut SplitMix64,
    config: &RetryConfig,
    attempt: u32,
    floor: Duration,
) -> Duration {
    let base = config.base_backoff.max(Duration::from_millis(1));
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(config.max_backoff).max(floor);
    let jitter = rng.next_f64() * 0.5 + 0.5; // [0.5, 1.0)
    capped.mul_f64(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A scripted fake transport: a queue of outcomes per roundtrip.
    struct Scripted {
        outcomes: RefCell<Vec<Result<Message, CoreError>>>,
        seen_ids: Vec<u64>,
        next_id: u64,
        reconnects: u64,
        stats: LinkStats,
    }

    impl Scripted {
        fn new(mut outcomes: Vec<Result<Message, CoreError>>) -> Scripted {
            outcomes.reverse(); // pop from the back in order
            Scripted {
                outcomes: RefCell::new(outcomes),
                seen_ids: Vec::new(),
                next_id: 0,
                reconnects: 0,
                stats: LinkStats::default(),
            }
        }
    }

    impl Transport for Scripted {
        fn roundtrip(&mut self, _req: &Message) -> Result<Message, CoreError> {
            self.seen_ids.push(self.next_id);
            self.stats.requests += 1;
            self.outcomes
                .borrow_mut()
                .pop()
                .unwrap_or(Ok(Message::Pong))
        }

        fn stats(&self) -> LinkStats {
            self.stats
        }

        fn set_next_request_id(&mut self, id: u64) {
            self.next_id = id;
        }
    }

    impl Reconnect for Scripted {
        fn reconnect(&mut self) -> Result<(), CoreError> {
            self.reconnects += 1;
            Ok(())
        }
    }

    fn fast() -> RetryConfig {
        RetryConfig {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 7,
            ping_before_retry: false,
        }
    }

    #[test]
    fn transient_failure_retries_with_stable_id() {
        let inner = Scripted::new(vec![
            Err(CoreError::Transport("boom".into())),
            Ok(Message::InsertOk),
        ]);
        let mut retry = Retry::new(inner, fast());
        let reply = retry.roundtrip(&Message::Ping).unwrap();
        assert_eq!(reply, Message::InsertOk);
        let inner = retry.into_inner();
        assert_eq!(inner.seen_ids.len(), 2);
        // Both attempts carried the same nonzero request id.
        assert_ne!(inner.seen_ids[0], 0);
        assert_eq!(inner.seen_ids[0], inner.seen_ids[1]);
        assert_eq!(inner.reconnects, 1);
    }

    #[test]
    fn distinct_logical_requests_get_distinct_ids() {
        let inner = Scripted::new(vec![Ok(Message::Pong), Ok(Message::Pong)]);
        let mut retry = Retry::new(inner, fast());
        retry.roundtrip(&Message::Ping).unwrap();
        retry.roundtrip(&Message::Ping).unwrap();
        let inner = retry.into_inner();
        assert_ne!(inner.seen_ids[0], inner.seen_ids[1]);
    }

    #[test]
    fn busy_reply_is_retried_then_succeeds() {
        let inner = Scripted::new(vec![
            Ok(Message::Busy { retry_after_ms: 1 }),
            Ok(Message::Pong),
        ]);
        let mut retry = Retry::new(inner, fast());
        assert_eq!(retry.roundtrip(&Message::Ping).unwrap(), Message::Pong);
        assert_eq!(retry.retry_stats().busy, 1);
    }

    #[test]
    fn deterministic_errors_do_not_retry() {
        let inner = Scripted::new(vec![Err(CoreError::Query("no such tag".into()))]);
        let mut retry = Retry::new(inner, fast());
        let err = retry.roundtrip(&Message::Ping).unwrap_err();
        assert_eq!(err, CoreError::Query("no such tag".into()));
        assert_eq!(retry.retry_stats().retries, 0);
        assert_eq!(retry.into_inner().seen_ids.len(), 1);
    }

    #[test]
    fn unavailable_reply_is_not_retried() {
        use crate::codec::WireError;
        let degraded = Message::Error(WireError::from_core(&CoreError::Unavailable {
            retry_after_ms: 250,
            reason: "degraded: wal append failed".into(),
        }));
        let inner = Scripted::new(vec![Ok(degraded.clone()), Ok(Message::Pong)]);
        let mut retry = Retry::new(inner, fast());
        // The error frame surfaces on the first attempt — no backoff loop.
        assert_eq!(retry.roundtrip(&Message::Ping).unwrap(), degraded);
        assert_eq!(retry.retry_stats().retries, 0);
        assert_eq!(retry.into_inner().seen_ids.len(), 1);
    }

    #[test]
    fn budget_exhaustion_surfaces_last_error() {
        let inner = Scripted::new(vec![
            Err(CoreError::Transport("a".into())),
            Err(CoreError::Transport("b".into())),
            Err(CoreError::Transport("c".into())),
        ]);
        let mut retry = Retry::new(inner, fast());
        let err = retry.roundtrip(&Message::Ping).unwrap_err();
        assert_eq!(err, CoreError::Transport("c".into()));
        assert_eq!(retry.retry_stats().exhausted, 1);
        assert_eq!(retry.retry_stats().retries, 2);
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let mk = || Retry::new(Scripted::new(vec![]), fast());
        let mut a = mk();
        let mut b = mk();
        for attempt in 0..4 {
            assert_eq!(
                a.backoff(attempt, Duration::ZERO),
                b.backoff(attempt, Duration::ZERO)
            );
        }
    }
}
