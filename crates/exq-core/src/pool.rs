//! Scoped fork/join parallelism for the query hot path.
//!
//! The paper's query-answering cost is dominated by the client decrypting
//! and re-parsing every shipped block (§6.4, §7.2); the server's candidate
//! filtering and response assembly are the same shape — an independent,
//! CPU-bound function applied per item. This module provides the one
//! primitive both sides need: an order-preserving [`parallel_map`] built on
//! `std::thread::scope` (no external crates, no long-lived pool, nothing to
//! shut down).
//!
//! Threads are a *knob*, not ambient state: callers hold a thread count
//! (resolved once via [`default_threads`], overridable per client/server
//! and with the `EXQ_THREADS` environment variable) and pass it in. A count
//! of 1 short-circuits to a plain serial loop, so the serial path stays the
//! reference semantics and the parallel path must match it bit for bit
//! (asserted by `tests/equivalence.rs`).

use crate::telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Registry handles for the pool's counters, resolved once — the hot path
/// pays two atomic adds per parallel call, never a registry lookup.
struct PoolMetrics {
    parallel_calls: Arc<telemetry::Counter>,
    tasks: Arc<telemetry::Counter>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static M: OnceLock<PoolMetrics> = OnceLock::new();
    M.get_or_init(|| PoolMetrics {
        parallel_calls: telemetry::counter("exq_pool_parallel_calls_total"),
        tasks: telemetry::counter("exq_pool_tasks_total"),
    })
}

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "EXQ_THREADS";

/// Items below this count are not worth a thread spawn: scoped spawn +
/// join costs tens of microseconds, which only pays off when each item
/// carries real work (a block decrypt + parse, a region walk).
pub const MIN_PARALLEL_ITEMS: usize = 2;

/// The default degree of parallelism: `EXQ_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism, floored at 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a configured thread count: `0` means "auto" (the
/// [`default_threads`] resolution), anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        default_threads()
    } else {
        configured
    }
}

/// Applies `f` to every item, returning results in input order.
///
/// With `threads <= 1` or fewer than [`MIN_PARALLEL_ITEMS`] items this is a
/// plain serial loop. Otherwise `min(threads, len)` scoped workers pull
/// chunks of indices off a shared atomic counter (dynamic scheduling, so
/// uneven item costs balance) and write each result into its input slot —
/// the output is deterministic regardless of scheduling.
///
/// Panics in `f` propagate: a panicking worker poisons the result mutex and
/// the scope re-raises on join, so no partial output can escape.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 || n < MIN_PARALLEL_ITEMS {
        return items.iter().map(&f).collect();
    }
    let m = pool_metrics();
    m.parallel_calls.inc();
    m.tasks.add(n as u64);
    // Chunked dynamic scheduling: big enough to amortize the atomic,
    // small enough that stragglers rebalance.
    let chunk = (n / (workers * 8)).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                let end = (start + chunk).min(n);
                // Compute outside the lock; the lock only orders the
                // (cheap) slot writes.
                let produced: Vec<(usize, R)> = (start..end).map(|i| (i, f(&items[i]))).collect();
                let mut guard = slots.lock().expect("worker panicked");
                for (i, r) in produced {
                    guard[i] = Some(r);
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("worker panicked")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Order-preserving parallel filter: keeps the items whose predicate holds.
/// The predicate runs in parallel; selection and output order are exactly
/// the serial `retain`.
pub fn parallel_filter<T, F>(threads: usize, items: Vec<T>, pred: F) -> Vec<T>
where
    T: Sync + Send,
    F: Fn(&T) -> bool + Sync,
{
    if threads.max(1) <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        let mut items = items;
        items.retain(|it| pred(it));
        return items;
    }
    let keep = parallel_map(threads, &items, &pred);
    items
        .into_iter()
        .zip(keep)
        .filter_map(|(it, k)| k.then_some(it))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(threads, &items, |&x| x * 3 + 1);
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn filter_matches_serial_retain() {
        let items: Vec<u32> = (0..500).collect();
        for threads in [1, 4] {
            let out = parallel_filter(threads, items.clone(), |&x| x % 7 == 0);
            let mut expect = items.clone();
            expect.retain(|&x| x % 7 == 0);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn resolve_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn uneven_work_still_deterministic() {
        // Items with wildly different costs exercise the dynamic scheduler.
        let items: Vec<u64> = (0..64).collect();
        let slow = |&x: &u64| {
            let spin = if x % 13 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let serial: Vec<u64> = items.iter().map(slow).collect();
        assert_eq!(parallel_map(4, &items, slow), serial);
    }
}
