//! Security analysis: candidate counting, attack simulation, and belief
//! tracking.
//!
//! The paper's security argument is counting-based: given what the attacker
//! sees (ciphertext database + metadata), how many indistinguishable
//! candidate plaintext databases are there, and does observing more (the
//! metadata, a query stream) let the attacker shrink the set or shift
//! probability mass? This module computes those counts *exactly* with big
//! integers and complements them with operational attack simulators.

pub mod counting {
    //! Exact candidate-database counts for Theorems 4.1, 5.1, and 5.2.

    use exq_crypto::bignum::{binomial, multinomial, BigUint};

    /// Theorem 4.1: with per-value occurrence frequencies `k₁…kₙ` and decoy
    /// encryption (every ciphertext distinct), the number of candidate
    /// plaintext→ciphertext mappings is the multinomial
    /// `(Σkᵢ)! / Πkᵢ!`.
    pub fn encryption_candidates(frequencies: &[u64]) -> BigUint {
        multinomial(frequencies)
    }

    /// Theorem 5.1: an encryption block with `n` leaf nodes represented by
    /// `k` grouped intervals admits `C(n−1, k−1)` leaf-to-interval
    /// assignments; over `m` blocks the candidates multiply.
    pub fn structural_candidates(blocks: &[(u64, u64)]) -> BigUint {
        let mut out = BigUint::one();
        for &(n_leaves, k_intervals) in blocks {
            if n_leaves == 0 || k_intervals == 0 {
                continue;
            }
            out = out.mul(&binomial(n_leaves - 1, k_intervals - 1));
        }
        out
    }

    /// Theorem 5.2: mapping `k` distinct plaintext values onto `n` distinct
    /// ciphertext values order-preservingly admits `C(n−1, k−1)` splittings.
    pub fn value_candidates(n_ciphertexts: u64, k_plaintexts: u64) -> BigUint {
        if n_ciphertexts == 0 || k_plaintexts == 0 || k_plaintexts > n_ciphertexts {
            return BigUint::zero();
        }
        binomial(n_ciphertexts - 1, k_plaintexts - 1)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// The paper's worked example: k=(3,4,5) → 27 720 candidates.
        #[test]
        fn theorem41_example() {
            assert_eq!(encryption_candidates(&[3, 4, 5]).to_u64(), Some(27_720));
        }

        /// The paper's worked example: n=15, k=5 → C(14,4) = 1001.
        #[test]
        fn theorem52_example() {
            assert_eq!(value_candidates(15, 5).to_u64(), Some(1001));
        }

        /// The paper's Figure 5 example: a block with 7 leaves in 3
        /// intervals has C(6,2) = 15 candidate structures.
        #[test]
        fn theorem51_example() {
            assert_eq!(structural_candidates(&[(7, 3)]).to_u64(), Some(15));
            // Two blocks multiply.
            assert_eq!(
                structural_candidates(&[(7, 3), (15, 5)]).to_u64(),
                Some(15 * 1001)
            );
        }

        #[test]
        fn degenerate_counts() {
            assert_eq!(encryption_candidates(&[5]).to_u64(), Some(1));
            assert_eq!(structural_candidates(&[]).to_u64(), Some(1));
            assert_eq!(structural_candidates(&[(1, 1)]).to_u64(), Some(1));
            assert_eq!(value_candidates(5, 6).to_u64(), Some(0));
            assert_eq!(value_candidates(5, 5).to_u64(), Some(1));
        }

        #[test]
        fn counts_grow_exponentially() {
            // "Large means exponential": log10 of the count grows linearly
            // in the number of values.
            let small = encryption_candidates(&[2; 5]);
            let large = encryption_candidates(&[2; 50]);
            assert!(large.approx_log10() > 10.0 * small.approx_log10());
        }
    }
}

pub mod attack {
    //! Operational simulations of the §3.3 attack model.
    //!
    //! The frequency-based attacker knows the exact plaintext histogram and
    //! observes the ciphertext histogram. A plaintext value whose occurrence
    //! count is unique on both sides yields a *claimed* crack; with ground
    //! truth available we also score whether the claim is *correct* — under
    //! OPESS the matching ciphertext frequency, when one coincidentally
    //! exists, almost never belongs to the claimed value.

    use std::collections::HashMap;

    /// One observed ciphertext histogram entry.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CipherEntry {
        /// Occurrence count the attacker observes.
        pub freq: u64,
        /// Ground-truth owner id (caller-defined identity of the plaintext
        /// value this ciphertext actually encodes); `None` when unknown.
        pub owner: Option<u64>,
    }

    /// Outcome of a frequency-based attack.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FrequencyAttackOutcome {
        /// Values the attacker links to a unique ciphertext frequency.
        pub claimed: usize,
        /// Claims that are actually right (requires ground truth).
        pub correct: usize,
        /// Total distinct plaintext values.
        pub total: usize,
    }

    impl FrequencyAttackOutcome {
        pub fn claim_rate(&self) -> f64 {
            if self.total == 0 {
                0.0
            } else {
                self.claimed as f64 / self.total as f64
            }
        }

        pub fn success_rate(&self) -> f64 {
            if self.total == 0 {
                0.0
            } else {
                self.correct as f64 / self.total as f64
            }
        }
    }

    /// Runs the frequency-matching attack. `plain` maps an owner id to its
    /// exact occurrence count.
    pub fn frequency_attack(
        plain: &HashMap<u64, u64>,
        cipher: &[CipherEntry],
    ) -> FrequencyAttackOutcome {
        let mut plain_freq_count: HashMap<u64, usize> = HashMap::new();
        for &c in plain.values() {
            *plain_freq_count.entry(c).or_default() += 1;
        }
        let mut cipher_by_freq: HashMap<u64, Vec<&CipherEntry>> = HashMap::new();
        for e in cipher {
            cipher_by_freq.entry(e.freq).or_default().push(e);
        }
        let mut claimed = 0;
        let mut correct = 0;
        for (&owner, &count) in plain {
            if plain_freq_count[&count] != 1 {
                continue;
            }
            let Some(matches) = cipher_by_freq.get(&count) else {
                continue;
            };
            if matches.len() == 1 {
                claimed += 1;
                if matches[0].owner == Some(owner) {
                    correct += 1;
                }
            }
        }
        FrequencyAttackOutcome {
            claimed,
            correct,
            total: plain.len(),
        }
    }

    /// Convenience for string-keyed histograms: owners are assigned by
    /// enumeration; cipher entries carry the owning plaintext (or `None`
    /// when unknown).
    pub fn frequency_attack_strings(
        plain: &HashMap<String, usize>,
        cipher: &[(u64, Option<String>)],
    ) -> FrequencyAttackOutcome {
        let ids: HashMap<&str, u64> = plain
            .keys()
            .enumerate()
            .map(|(i, k)| (k.as_str(), i as u64))
            .collect();
        let plain_ids: HashMap<u64, u64> = plain
            .iter()
            .map(|(k, &c)| (ids[k.as_str()], c as u64))
            .collect();
        let cipher_entries: Vec<CipherEntry> = cipher
            .iter()
            .map(|(freq, owner)| CipherEntry {
                freq: *freq,
                owner: owner.as_deref().and_then(|o| ids.get(o).copied()),
            })
            .collect();
        frequency_attack(&plain_ids, &cipher_entries)
    }

    /// The ground-truth ciphertext histogram an attacker reads off an OPESS
    /// value index: one entry per ciphertext with
    /// `freq = chunk occurrences × scale`, annotated with the plaintext
    /// value that actually owns it.
    pub fn opess_cipher_histogram(
        attr: &crate::encrypt::OpessAttr,
        plain: &HashMap<String, usize>,
    ) -> Vec<(u64, Option<String>)> {
        let mut owner_of: HashMap<u64, &String> = HashMap::new();
        for k in plain.keys() {
            if let Some(x) = attr.codec.encode(k) {
                owner_of.insert(x.to_bits(), k);
            }
        }
        attr.plan
            .entries()
            .iter()
            .flat_map(|e| {
                let owner = owner_of.get(&e.plaintext.to_bits()).map(|s| s.to_string());
                e.chunks
                    .iter()
                    .map(move |c| (c.occurrences as u64 * e.scale as u64, owner.clone()))
            })
            .collect()
    }

    /// Simulates the size-based attack: the attacker eliminates candidate
    /// databases whose encrypted size differs from the observed one.
    /// Returns the indices of surviving candidates.
    pub fn size_attack(candidate_sizes: &[usize], observed: usize) -> Vec<usize> {
        candidate_sizes
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s == observed).then_some(i))
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn hist(pairs: &[(&str, usize)]) -> HashMap<String, usize> {
            pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
        }

        /// Deterministic per-leaf encryption preserves frequencies and
        /// owners: every uniquely-frequent value is cracked correctly.
        #[test]
        fn naive_encryption_cracks() {
            let plain = hist(&[("leukemia", 1), ("diarrhea", 2), ("flu", 5)]);
            let cipher = [
                (1u64, Some("leukemia".to_owned())),
                (2, Some("diarrhea".to_owned())),
                (5, Some("flu".to_owned())),
            ];
            let out = frequency_attack_strings(&plain, &cipher);
            assert_eq!(out.claimed, 3);
            assert_eq!(out.correct, 3);
            assert_eq!(out.success_rate(), 1.0);
        }

        /// OPESS-flattened histograms give the attacker nothing to match.
        #[test]
        fn flattened_histogram_resists() {
            let plain = hist(&[("leukemia", 1), ("diarrhea", 2), ("flu", 5)]);
            let cipher = [
                (2u64, Some("flu".to_owned())),
                (3, Some("flu".to_owned())),
                (3, Some("diarrhea".to_owned())),
                (2, Some("leukemia".to_owned())),
                (3, Some("flu".to_owned())),
            ];
            let out = frequency_attack_strings(&plain, &cipher);
            assert_eq!(out.correct, 0);
        }

        /// A coincidental frequency match claims a crack but is wrong.
        #[test]
        fn coincidental_match_is_incorrect() {
            let plain = hist(&[("a", 6), ("b", 10)]);
            // One scaled chunk of `b` happens to have frequency 6.
            let cipher = [
                (6u64, Some("b".to_owned())),
                (5, Some("b".to_owned())),
                (3, Some("a".to_owned())),
                (3, Some("a".to_owned())),
            ];
            let out = frequency_attack_strings(&plain, &cipher);
            assert_eq!(out.claimed, 1);
            assert_eq!(out.correct, 0);
        }

        /// Equal plaintext frequencies are never cracked even naively.
        #[test]
        fn ambiguous_frequencies_safe() {
            let plain = hist(&[("a", 3), ("b", 3)]);
            let out = frequency_attack_strings(
                &plain,
                &[(3, Some("a".to_owned())), (3, Some("b".to_owned()))],
            );
            assert_eq!(out.claimed, 0);
        }

        #[test]
        fn size_attack_filters() {
            assert_eq!(size_attack(&[10, 12, 10, 9], 10), [0, 2]);
            assert!(size_attack(&[1, 2], 3).is_empty());
        }
    }
}

pub mod belief {
    //! Belief tracking for secure query answering (Theorem 6.1).
    //!
    //! The attacker watches translated queries and responses and maintains,
    //! for a captured association query `A` and block `B`, the belief
    //! `Bel(B(A))` that `B` satisfies `A`. The theorem's argument: before
    //! any query the prior over which of `k` plaintext values associates
    //! with a given visible value is `1/k`; after observing a translated
    //! query the attacker learns only that *some* ciphertext band was
    //! probed, and the number of order-preserving splittings consistent
    //! with the observation is `C(n−1, k−1) ≥ k`, so the belief moves to
    //! `1/C(n−1, k−1)` and stays there.

    use exq_crypto::bignum::BigUint;

    /// The belief sequence of an attacker observing a query stream.
    #[derive(Debug, Clone)]
    pub struct BeliefTracker {
        /// Distinct plaintext values of the probed attribute.
        k_plain: u64,
        /// Distinct ciphertext values in the observed value index.
        n_cipher: u64,
        beliefs: Vec<f64>,
    }

    impl BeliefTracker {
        /// Starts with the prior `1/k`.
        pub fn new(k_plain: u64, n_cipher: u64) -> BeliefTracker {
            assert!(k_plain >= 1 && n_cipher >= k_plain);
            BeliefTracker {
                k_plain,
                n_cipher,
                beliefs: vec![1.0 / k_plain as f64],
            }
        }

        /// Records one observed query+response; returns the new belief.
        pub fn observe_query(&mut self) -> f64 {
            let splittings = super::counting::value_candidates(self.n_cipher, self.k_plain);
            let denom = big_to_f64_at_least(&splittings, self.k_plain as f64);
            let new_belief = 1.0 / denom;
            let prev = *self.beliefs.last().unwrap();
            // Theorem 6.1: the belief never increases.
            self.beliefs.push(new_belief.min(prev));
            new_belief.min(prev)
        }

        /// The full belief sequence (index 0 = prior).
        pub fn sequence(&self) -> &[f64] {
            &self.beliefs
        }

        /// Checks the Theorem 6.1 property.
        pub fn is_non_increasing(&self) -> bool {
            self.beliefs.windows(2).all(|w| w[1] <= w[0] + 1e-12)
        }
    }

    fn big_to_f64_at_least(v: &BigUint, floor: f64) -> f64 {
        let f = v.to_f64();
        if f.is_finite() && f >= 1.0 {
            f.max(floor)
        } else {
            f64::MAX
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn belief_never_increases() {
            let mut t = BeliefTracker::new(5, 15);
            for _ in 0..50 {
                t.observe_query();
            }
            assert!(t.is_non_increasing());
            assert_eq!(t.sequence().len(), 51);
        }

        /// First observation drops belief from 1/k to 1/C(n−1,k−1).
        #[test]
        fn first_query_drops_to_splitting_count() {
            let mut t = BeliefTracker::new(5, 15);
            let b = t.observe_query();
            assert!((b - 1.0 / 1001.0).abs() < 1e-12);
            assert!(b <= 1.0 / 5.0);
        }

        /// With n = k (no splitting possible) the belief stays at the prior.
        #[test]
        fn degenerate_no_splitting() {
            let mut t = BeliefTracker::new(4, 4);
            let b = t.observe_query();
            assert!((b - 0.25).abs() < 1e-12);
            assert!(t.is_non_increasing());
        }
    }
}
