//! Self-contained observability: a sharded metrics registry, query-scoped
//! trace spans, and exporters — no external crates, matching repo policy.
//!
//! Three layers:
//!
//! * **Metrics registry** — named [`Counter`]s, [`Gauge`]s, and log2-bucketed
//!   latency [`Histogram`]s behind atomics, global and shared across the
//!   process. Lookups hash the name to one of 8 `RwLock`'d shards; hot paths
//!   cache the returned `Arc` handle so steady-state cost is a relaxed
//!   atomic add. Memory is bounded by the set of distinct metric names (all
//!   compile-time constants in this codebase): a histogram is 64 buckets +
//!   count + sum = 528 bytes, counters/gauges 8 bytes each.
//!
//! * **Trace spans** — a query begins a trace ([`begin_trace`]) holding a
//!   thread-local span collector; [`span`] (RAII, self-timed) and
//!   [`record_span`] (externally measured duration, guaranteed equal to the
//!   reported stat) append [`SpanRec`]s to it. Collectors stack: a server
//!   dispatch on the *same* thread (the in-process transport) pushes a fresh
//!   shielded collector, so client and server spans never interleave. The
//!   trace id crosses the wire in the frame header; server spans return
//!   inside the response and are re-parented under the client's roundtrip
//!   span by [`adopt_spans`], stitching one tree. Span `start_ns` offsets
//!   are relative to each side's own trace epoch (no clock sync assumed);
//!   durations are exact.
//!
//! * **Exporters** — a JSON-lines trace sink ([`set_trace_out`]), a
//!   Prometheus-style text exposition ([`render`]), a leveled stderr logger
//!   ([`log`]/[`set_log_level`]) keeping stdout clean for machine-readable
//!   output, and a slow-query log ([`set_slow_ms`]).
//!
//! [`set_enabled`] (or `EXQ_TELEMETRY=0`) turns span recording off for
//! overhead measurement (experiment e17); counters stay on — they are
//! single atomic adds.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- metrics --

/// Number of registry shards; name-hash picks the shard.
const SHARDS: usize = 8;

/// Histogram bucket count: bucket `i` holds observations with
/// `floor(log2(nanos)) == i`, covering the full `u64` nanosecond range.
pub const HIST_BUCKETS: usize = 64;

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed latency histogram over nanoseconds. The invariant the
/// concurrency tests pin down: the sum of bucket counts always equals the
/// observation count.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// `floor(log2(nanos))` with 0 mapped to bucket 0.
fn bucket_index(nanos: u64) -> usize {
    63 - nanos.max(1).leading_zeros() as usize
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    pub fn observe(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counters.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Quantile estimate (`0.0..=1.0`): the upper bound of the bucket where
    /// the cumulative count crosses `q * total`. Resolution is one octave —
    /// plenty for p50/p90/p99 dashboards.
    pub fn quantile(&self, q: f64) -> Duration {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Duration::from_nanos(bucket_upper(i));
            }
        }
        Duration::from_nanos(bucket_upper(HIST_BUCKETS - 1))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Sharded name → metric map. One global instance lives behind
/// [`registry`]; separate instances exist only in tests.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [RwLock<HashMap<String, Metric>>; SHARDS],
}

/// FNV-1a; no need for DoS resistance — names are compile-time constants.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let shard = &self.shards[shard_of(name)];
        if let Some(m) = shard.read().expect("registry shard").get(name) {
            return m.clone();
        }
        let mut w = shard.write().expect("registry shard");
        w.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind —
    /// metric names are compile-time constants, so that is a programming
    /// error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::default()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Prometheus-style text exposition: `# TYPE` lines, cumulative
    /// `_bucket{le="…"}` rows (seconds), `_sum`/`_count`, sorted by name so
    /// the output is diffable.
    pub fn render(&self) -> String {
        let mut entries: Vec<(String, Metric)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read().expect("registry shard");
            entries.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, metric) in entries {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts = h.bucket_counts();
                    let mut acc = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        acc += c;
                        let le = bucket_upper(i) as f64 / 1e9;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {acc}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {acc}\n"));
                    out.push_str(&format!(
                        "{name}_sum {}\n{name}_count {}\n",
                        h.sum_nanos() as f64 / 1e9,
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// The process-global registry. First access also applies the
/// `EXQ_TELEMETRY` environment knob (`0`/`off`/`false` disable spans).
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        if let Ok(v) = std::env::var("EXQ_TELEMETRY") {
            if matches!(v.as_str(), "0" | "off" | "false") {
                set_enabled(false);
            }
        }
        Registry::new()
    })
}

pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Renders the global registry's Prometheus-style exposition.
pub fn render() -> String {
    registry().render()
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Master switch for span recording (traces + span histograms). Counters
/// are unaffected — they are single atomic adds.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ----------------------------------------------------------------- traces --

/// Which end of the wire produced a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Client,
    Server,
}

impl Side {
    pub fn as_str(&self) -> &'static str {
        match self {
            Side::Client => "client",
            Side::Server => "server",
        }
    }
}

/// One completed span. `parent == 0` means root (within its side before
/// stitching). `start_ns` is relative to the owning side's trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    pub trace: u64,
    pub id: u64,
    pub parent: u64,
    pub name: String,
    pub side: Side,
    pub start_ns: u64,
    pub dur_ns: u64,
}

struct ActiveTrace {
    trace: u64,
    side: Side,
    /// Current parent span id for new spans (0 at trace root).
    parent: u64,
    spans: Vec<SpanRec>,
    epoch: Instant,
}

thread_local! {
    /// Stack of active collectors: the in-process transport dispatches the
    /// server on the client's thread, and the pushed server collector
    /// shields the client's so spans never interleave.
    static TRACES: RefCell<Vec<ActiveTrace>> = const { RefCell::new(Vec::new()) };
}

/// Splitmix64-style finalizer over wall clock + pid: trace/span ids must be
/// distinct across processes with no coordination.
fn entropy_seed() -> u64 {
    let ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = ns ^ (std::process::id() as u64).rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn id_source() -> &'static AtomicU64 {
    static SRC: OnceLock<AtomicU64> = OnceLock::new();
    SRC.get_or_init(|| AtomicU64::new(entropy_seed() | 1))
}

/// Fresh nonzero id; golden-ratio stride keeps ids spread even when the
/// entropy seed is weak.
fn fresh_id() -> u64 {
    let v = id_source().fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    if v == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        v
    }
}

/// Allocates a new trace id (client-side, at query entry).
pub fn new_trace_id() -> u64 {
    fresh_id()
}

/// Trace id of this thread's innermost active collector; 0 when untraced.
/// This is what transports stamp into the frame header.
pub fn current_trace() -> u64 {
    TRACES.with(|t| t.borrow().last().map(|a| a.trace).unwrap_or(0))
}

/// RAII handle for an active trace; [`TraceScope::finish`] yields the
/// collected spans. Dropping without finishing discards them.
pub struct TraceScope {
    pushed: bool,
    done: bool,
}

/// Pushes a span collector for `trace` onto this thread's stack. A `trace`
/// of 0 (untraced peer) yields an inert scope that collects nothing.
pub fn begin_trace(trace: u64, side: Side) -> TraceScope {
    if trace == 0 || !enabled() {
        return TraceScope {
            pushed: false,
            done: false,
        };
    }
    TRACES.with(|t| {
        t.borrow_mut().push(ActiveTrace {
            trace,
            side,
            parent: 0,
            spans: Vec::new(),
            epoch: Instant::now(),
        })
    });
    TraceScope {
        pushed: true,
        done: false,
    }
}

impl TraceScope {
    /// True when this scope actually collects spans.
    pub fn is_active(&self) -> bool {
        self.pushed
    }

    /// Pops the collector and returns its spans.
    pub fn finish(mut self) -> Vec<SpanRec> {
        self.done = true;
        if !self.pushed {
            return Vec::new();
        }
        TRACES
            .with(|t| t.borrow_mut().pop())
            .map(|a| a.spans)
            .unwrap_or_default()
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.pushed && !self.done {
            TRACES.with(|t| {
                t.borrow_mut().pop();
            });
        }
    }
}

fn observe_span_metric(name: &str, dur: Duration) {
    let mut metric = String::with_capacity(9 + name.len());
    metric.push_str("exq_span_");
    metric.extend(name.chars().map(|c| if c == '.' { '_' } else { c }));
    histogram(&metric).observe_duration(dur);
}

/// Records a span with an externally measured duration — used where the
/// code already times a phase, so the span duration and the reported stat
/// are the *same* number. Feeds the span histogram even when no trace is
/// active; appends a [`SpanRec`] only under an active trace. The span's
/// start is back-dated `dur` from now.
pub fn record_span(name: &str, dur: Duration) {
    if !enabled() {
        return;
    }
    observe_span_metric(name, dur);
    TRACES.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(active) = t.last_mut() {
            let end = active.epoch.elapsed();
            let start = end.checked_sub(dur).unwrap_or(Duration::ZERO);
            let rec = SpanRec {
                trace: active.trace,
                id: fresh_id(),
                parent: active.parent,
                name: name.to_owned(),
                side: active.side,
                start_ns: start.as_nanos().min(u64::MAX as u128) as u64,
                dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
            };
            active.spans.push(rec);
        }
    });
}

/// Self-timing RAII span: times from construction to drop and becomes the
/// parent of spans recorded while it is live.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    id: u64,
    /// Whether a collector was active at construction (and we became its
    /// current parent).
    active: bool,
    prev_parent: u64,
}

/// Opens a self-timed span. Cheap no-op (one atomic load, one `Instant`)
/// when telemetry is disabled or no trace is active.
pub fn span(name: &'static str) -> SpanGuard {
    let mut g = SpanGuard {
        name,
        start: Instant::now(),
        id: 0,
        active: false,
        prev_parent: 0,
    };
    if enabled() {
        TRACES.with(|t| {
            if let Some(a) = t.borrow_mut().last_mut() {
                g.id = fresh_id();
                g.active = true;
                g.prev_parent = a.parent;
                a.parent = g.id;
            }
        });
    }
    g
}

impl SpanGuard {
    /// Span id (0 when no trace was active), used to re-parent adopted
    /// remote spans under this span.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        if !enabled() {
            return;
        }
        observe_span_metric(self.name, dur);
        if !self.active {
            return;
        }
        TRACES.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(a) = t.last_mut() {
                a.parent = self.prev_parent;
                let end = a.epoch.elapsed();
                let start = end.checked_sub(dur).unwrap_or(Duration::ZERO);
                let rec = SpanRec {
                    trace: a.trace,
                    id: self.id,
                    parent: self.prev_parent,
                    name: self.name.to_owned(),
                    side: a.side,
                    start_ns: start.as_nanos().min(u64::MAX as u128) as u64,
                    dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                };
                a.spans.push(rec);
            }
        });
    }
}

/// Merges spans returned by the peer into this thread's active trace,
/// re-writing their trace id and hanging their roots (`parent == 0`) under
/// `parent` — typically the roundtrip span. No-op when untraced.
pub fn adopt_spans(spans: &[SpanRec], parent: u64) {
    if spans.is_empty() {
        return;
    }
    TRACES.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(a) = t.last_mut() {
            for s in spans {
                let mut s = s.clone();
                s.trace = a.trace;
                if s.parent == 0 {
                    s.parent = parent;
                }
                a.spans.push(s);
            }
        }
    });
}

// -------------------------------------------------------------- exporters --

fn trace_sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Opens (truncating) a JSON-lines trace sink; every finished trace's spans
/// are appended one JSON object per line.
pub fn set_trace_out(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *trace_sink().lock().expect("trace sink") = Some(BufWriter::new(file));
    Ok(())
}

/// Flushes and closes the trace sink (mainly for tests).
pub fn clear_trace_out() {
    if let Some(mut w) = trace_sink().lock().expect("trace sink").take() {
        let _ = w.flush();
    }
}

/// True when a trace sink is open.
pub fn trace_out_set() -> bool {
    trace_sink().lock().expect("trace sink").is_some()
}

static TRACE_ALL: AtomicBool = AtomicBool::new(false);

/// Forces per-query trace collection even without a sink — used by the
/// overhead experiment (e17) to measure span machinery without file I/O.
pub fn set_trace_all(on: bool) {
    TRACE_ALL.store(on, Ordering::Relaxed);
}

/// Should a new query start a trace? Yes when telemetry is on and either a
/// sink is open or tracing is forced.
pub fn tracing_wanted() -> bool {
    enabled() && (TRACE_ALL.load(Ordering::Relaxed) || trace_out_set())
}

/// Serializes one span as a JSON object. Span names are code-controlled
/// identifiers (no quotes/backslashes), so no escaping is needed.
pub fn span_json(s: &SpanRec) -> String {
    format!(
        "{{\"trace\":\"{:016x}\",\"id\":\"{:016x}\",\"parent\":\"{:016x}\",\
         \"name\":\"{}\",\"side\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
        s.trace,
        s.id,
        s.parent,
        s.name,
        s.side.as_str(),
        s.start_ns,
        s.dur_ns
    )
}

/// Writes a finished trace's spans to the sink, one JSON line per span.
/// Silently a no-op when no sink is open.
pub fn write_trace(spans: &[SpanRec]) {
    if spans.is_empty() {
        return;
    }
    let mut guard = trace_sink().lock().expect("trace sink");
    if let Some(w) = guard.as_mut() {
        for s in spans {
            let _ = writeln!(w, "{}", span_json(s));
        }
        let _ = w.flush();
    }
}

// ----------------------------------------------------------------- logger --

/// Log severity; `Off` silences everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Off = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
}

impl Level {
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

pub fn log_level() -> Level {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        _ => Level::Debug,
    }
}

/// Operational logging goes to **stderr** so stdout stays machine-readable.
pub fn log(level: Level, msg: &str) {
    if level == Level::Off || (level as u8) > LOG_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    eprintln!("[exq:{}] {msg}", level.as_str());
}

// ------------------------------------------------------------- slow query --

static SLOW_NS: AtomicU64 = AtomicU64::new(0);

/// Queries slower than this (client-observed total) are logged at `warn`
/// and counted in `exq_slow_queries_total`. 0 disables.
pub fn set_slow_ms(ms: u64) {
    SLOW_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
}

/// Per-query bookkeeping: bumps query counters and applies the slow-query
/// threshold.
pub fn note_query(desc: &str, total: Duration, served_from_cache: bool) {
    counter("exq_queries_total").inc();
    if served_from_cache {
        counter("exq_queries_cached_total").inc();
    }
    let threshold = SLOW_NS.load(Ordering::Relaxed);
    let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
    if threshold > 0 && total_ns >= threshold {
        counter("exq_slow_queries_total").inc();
        log(
            Level::Warn,
            &format!(
                "slow query ({:.2} ms{}): {desc}",
                total.as_secs_f64() * 1e3,
                if served_from_cache { ", cached" } else { "" }
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
        for n in [0u64, 1, 2, 3, 5, 1000, u64::MAX] {
            assert!(n <= bucket_upper(bucket_index(n)));
        }
    }

    #[test]
    fn histogram_quantiles_and_invariant() {
        let h = Histogram::default();
        for nanos in [10u64, 20, 30, 1_000, 2_000, 100_000, 1_000_000] {
            h.observe(nanos);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        assert_eq!(
            h.sum_nanos(),
            10 + 20 + 30 + 1_000 + 2_000 + 100_000 + 1_000_000
        );
        // p50 lands in the bucket holding the 4th observation (1000ns →
        // bucket 9, upper bound 1023).
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1023));
        assert!(h.quantile(1.0) >= Duration::from_nanos(1_000_000));
        assert_eq!(Histogram::default().quantile(0.9), Duration::ZERO);
    }

    #[test]
    fn registry_render_sorted_and_typed() {
        let r = Registry::new();
        r.counter("zz_total").add(3);
        r.gauge("aa_gauge").set(-7);
        r.histogram("mm_hist").observe(100);
        let text = r.render();
        let aa = text.find("# TYPE aa_gauge gauge").expect("gauge line");
        let mm = text.find("# TYPE mm_hist histogram").expect("hist line");
        let zz = text.find("# TYPE zz_total counter").expect("counter line");
        assert!(aa < mm && mm < zz, "names not sorted:\n{text}");
        assert!(text.contains("zz_total 3"));
        assert!(text.contains("aa_gauge -7"));
        assert!(text.contains("mm_hist_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mm_hist_count 1"));
    }

    #[test]
    fn counter_handles_alias_one_metric() {
        let r = Registry::new();
        let a = r.counter("same");
        let b = r.counter("same");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("same").get(), 3);
    }

    #[test]
    fn trace_scope_collects_and_shields() {
        let outer = begin_trace(42, Side::Client);
        record_span("outer.work", Duration::from_millis(1));
        {
            // Simulates the in-process server dispatch on the same thread.
            let inner = begin_trace(42, Side::Server);
            record_span("inner.work", Duration::from_millis(2));
            let spans = inner.finish();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].name, "inner.work");
            assert_eq!(spans[0].side, Side::Server);
            adopt_spans(&spans, 7);
        }
        let spans = outer.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer.work");
        assert_eq!(spans[1].name, "inner.work");
        assert_eq!(spans[1].parent, 7, "adopted root re-parented");
        assert_eq!(spans[1].trace, 42);
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn span_guard_nests_parents() {
        let scope = begin_trace(9, Side::Client);
        let parent_id;
        {
            let g = span("parent.phase");
            parent_id = g.id();
            record_span("child.phase", Duration::from_micros(5));
        }
        record_span("sibling.phase", Duration::from_micros(5));
        let spans = scope.finish();
        assert_eq!(spans.len(), 3);
        let child = spans.iter().find(|s| s.name == "child.phase").unwrap();
        assert_eq!(child.parent, parent_id);
        let parent = spans.iter().find(|s| s.name == "parent.phase").unwrap();
        assert_eq!(parent.parent, 0);
        let sib = spans.iter().find(|s| s.name == "sibling.phase").unwrap();
        assert_eq!(sib.parent, 0);
    }

    #[test]
    fn untraced_thread_records_nothing() {
        assert_eq!(current_trace(), 0);
        record_span("floating.span", Duration::from_micros(1));
        let g = span("floating.guard");
        assert_eq!(g.id(), 0);
        drop(g);
        let inert = begin_trace(0, Side::Client);
        assert!(!inert.is_active());
        assert!(inert.finish().is_empty());
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn span_json_shape() {
        let s = SpanRec {
            trace: 0xABC,
            id: 1,
            parent: 0,
            name: "client.translate".into(),
            side: Side::Client,
            start_ns: 5,
            dur_ns: 17,
        };
        let j = span_json(&s);
        assert!(j.contains("\"trace\":\"0000000000000abc\""));
        assert!(j.contains("\"name\":\"client.translate\""));
        assert!(j.contains("\"side\":\"client\""));
        assert!(j.contains("\"dur_ns\":17"));
    }

    #[test]
    fn fresh_ids_distinct_and_nonzero() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}
