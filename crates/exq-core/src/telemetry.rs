//! Self-contained observability: a sharded metrics registry, query-scoped
//! trace spans, and exporters — no external crates, matching repo policy.
//!
//! Three layers:
//!
//! * **Metrics registry** — named [`Counter`]s, [`Gauge`]s, and log2-bucketed
//!   latency [`Histogram`]s behind atomics, global and shared across the
//!   process. Lookups hash the name to one of 8 `RwLock`'d shards; hot paths
//!   cache the returned `Arc` handle so steady-state cost is a relaxed
//!   atomic add. Memory is bounded by the set of distinct metric names (all
//!   compile-time constants in this codebase): a histogram is 64 buckets +
//!   count + sum = 528 bytes, counters/gauges 8 bytes each.
//!
//! * **Trace spans** — a query begins a trace ([`begin_trace`]) holding a
//!   thread-local span collector; [`span`] (RAII, self-timed) and
//!   [`record_span`] (externally measured duration, guaranteed equal to the
//!   reported stat) append [`SpanRec`]s to it. Collectors stack: a server
//!   dispatch on the *same* thread (the in-process transport) pushes a fresh
//!   shielded collector, so client and server spans never interleave. The
//!   trace id crosses the wire in the frame header; server spans return
//!   inside the response and are re-parented under the client's roundtrip
//!   span by [`adopt_spans`], stitching one tree. Span `start_ns` offsets
//!   are relative to each side's own trace epoch (no clock sync assumed);
//!   durations are exact.
//!
//! * **Exporters** — a JSON-lines trace sink ([`set_trace_out`]), a
//!   Prometheus-style text exposition ([`render`]), a leveled stderr logger
//!   ([`log`]/[`set_log_level`]) keeping stdout clean for machine-readable
//!   output, and a slow-query log ([`set_slow_ms`]).
//!
//! [`set_enabled`] (or `EXQ_TELEMETRY=0`) turns span recording off for
//! overhead measurement (experiment e17); counters stay on — they are
//! single atomic adds.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- metrics --

/// Number of registry shards; name-hash picks the shard.
const SHARDS: usize = 8;

/// Histogram bucket count: bucket `i` holds observations with
/// `floor(log2(nanos)) == i`, covering the full `u64` nanosecond range.
pub const HIST_BUCKETS: usize = 64;

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed latency histogram over nanoseconds. The invariant the
/// concurrency tests pin down: the sum of bucket counts always equals the
/// observation count.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// `floor(log2(nanos))` with 0 mapped to bucket 0.
fn bucket_index(nanos: u64) -> usize {
    63 - nanos.max(1).leading_zeros() as usize
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    pub fn observe(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket counters.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Quantile estimate (`0.0..=1.0`): the upper bound of the bucket where
    /// the cumulative count crosses `q * total`. Resolution is one octave —
    /// plenty for p50/p90/p99 dashboards.
    pub fn quantile(&self, q: f64) -> Duration {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Duration::from_nanos(bucket_upper(i));
            }
        }
        Duration::from_nanos(bucket_upper(HIST_BUCKETS - 1))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Sharded name → metric map. One global instance lives behind
/// [`registry`]; separate instances exist only in tests.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [RwLock<HashMap<String, Metric>>; SHARDS],
}

/// FNV-1a; no need for DoS resistance — names are compile-time constants.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let shard = &self.shards[shard_of(name)];
        if let Some(m) = shard.read().expect("registry shard").get(name) {
            return m.clone();
        }
        let mut w = shard.write().expect("registry shard");
        w.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind —
    /// metric names are compile-time constants, so that is a programming
    /// error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::default()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Removes every series carrying this database's `{db="…"}` label —
    /// called when a database is dropped, so its gauges and counters stop
    /// exporting their last values forever. Handles still held by live
    /// objects keep counting privately; they are simply no longer
    /// rendered. Returns the number of series removed.
    pub fn remove_db_series(&self, db: &str) -> usize {
        let suffix = format!("{{db=\"{}\"}}", escape_label(db));
        let mut removed = 0;
        for shard in &self.shards {
            let mut w = shard.write().expect("registry shard");
            let before = w.len();
            w.retain(|name, _| !name.ends_with(&suffix));
            removed += before - w.len();
        }
        removed
    }

    /// Prometheus-style text exposition: `# TYPE` lines, cumulative
    /// `_bucket{le="…"}` rows (seconds), `_sum`/`_count`, sorted by name so
    /// the output is diffable.
    pub fn render(&self) -> String {
        let mut entries: Vec<(String, Metric)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read().expect("registry shard");
            entries.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, metric) in entries {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts = h.bucket_counts();
                    let mut acc = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        acc += c;
                        let le = bucket_upper(i) as f64 / 1e9;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {acc}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {acc}\n"));
                    out.push_str(&format!(
                        "{name}_sum {}\n{name}_count {}\n",
                        h.sum_nanos() as f64 / 1e9,
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// The process-global registry. First access also applies the
/// `EXQ_TELEMETRY` environment knob (`0`/`off`/`false` disable spans).
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        if let Ok(v) = std::env::var("EXQ_TELEMETRY") {
            if matches!(v.as_str(), "0" | "off" | "false") {
                set_enabled(false);
            }
        }
        Registry::new()
    })
}

pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Renders the global registry's Prometheus-style exposition.
pub fn render() -> String {
    registry().render()
}

/// Escapes a string for use as a Prometheus label *value*: backslash,
/// double quote, and newline are backslash-escaped exactly as the
/// exposition format requires. The escaping is injective, so two distinct
/// db ids can never collide into one series name (`a"}` vs `a\"}` stay
/// distinct) and the rendered exposition stays parseable whatever the
/// label contains.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// The canonical name of a per-database series: `name{db="<escaped id>"}`.
/// Every per-db metric in the codebase is built through this helper, which
/// is what lets [`remove_db_series`] find them all by suffix when a
/// database is dropped.
pub fn db_series(name: &str, db: &str) -> String {
    format!("{name}{{db=\"{}\"}}", escape_label(db))
}

/// Removes this database's per-db series from the global registry.
pub fn remove_db_series(db: &str) -> usize {
    registry().remove_db_series(db)
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Master switch for span recording (traces + span histograms). Counters
/// are unaffected — they are single atomic adds.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ----------------------------------------------------------------- traces --

/// Which end of the wire produced a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Client,
    Server,
}

impl Side {
    pub fn as_str(&self) -> &'static str {
        match self {
            Side::Client => "client",
            Side::Server => "server",
        }
    }
}

/// One completed span. `parent == 0` means root (within its side before
/// stitching). `start_ns` is relative to the owning side's trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    pub trace: u64,
    pub id: u64,
    pub parent: u64,
    pub name: String,
    pub side: Side,
    pub start_ns: u64,
    pub dur_ns: u64,
}

struct ActiveTrace {
    trace: u64,
    side: Side,
    /// Current parent span id for new spans (0 at trace root).
    parent: u64,
    spans: Vec<SpanRec>,
    epoch: Instant,
}

thread_local! {
    /// Stack of active collectors: the in-process transport dispatches the
    /// server on the client's thread, and the pushed server collector
    /// shields the client's so spans never interleave.
    static TRACES: RefCell<Vec<ActiveTrace>> = const { RefCell::new(Vec::new()) };
}

/// Splitmix64-style finalizer over wall clock + pid: trace/span ids must be
/// distinct across processes with no coordination.
fn entropy_seed() -> u64 {
    let ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = ns ^ (std::process::id() as u64).rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn id_source() -> &'static AtomicU64 {
    static SRC: OnceLock<AtomicU64> = OnceLock::new();
    SRC.get_or_init(|| AtomicU64::new(entropy_seed() | 1))
}

/// Fresh nonzero id; golden-ratio stride keeps ids spread even when the
/// entropy seed is weak.
fn fresh_id() -> u64 {
    let v = id_source().fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    if v == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        v
    }
}

/// Allocates a new trace id (client-side, at query entry).
pub fn new_trace_id() -> u64 {
    fresh_id()
}

/// Trace id of this thread's innermost active collector; 0 when untraced.
/// This is what transports stamp into the frame header.
pub fn current_trace() -> u64 {
    TRACES.with(|t| t.borrow().last().map(|a| a.trace).unwrap_or(0))
}

/// RAII handle for an active trace; [`TraceScope::finish`] yields the
/// collected spans. Dropping without finishing discards them.
pub struct TraceScope {
    pushed: bool,
    done: bool,
}

/// Pushes a span collector for `trace` onto this thread's stack. A `trace`
/// of 0 (untraced peer) yields an inert scope that collects nothing.
pub fn begin_trace(trace: u64, side: Side) -> TraceScope {
    if trace == 0 || !enabled() {
        return TraceScope {
            pushed: false,
            done: false,
        };
    }
    TRACES.with(|t| {
        t.borrow_mut().push(ActiveTrace {
            trace,
            side,
            parent: 0,
            spans: Vec::new(),
            epoch: Instant::now(),
        })
    });
    TraceScope {
        pushed: true,
        done: false,
    }
}

impl TraceScope {
    /// True when this scope actually collects spans.
    pub fn is_active(&self) -> bool {
        self.pushed
    }

    /// Pops the collector and returns its spans.
    pub fn finish(mut self) -> Vec<SpanRec> {
        self.done = true;
        if !self.pushed {
            return Vec::new();
        }
        TRACES
            .with(|t| t.borrow_mut().pop())
            .map(|a| a.spans)
            .unwrap_or_default()
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.pushed && !self.done {
            TRACES.with(|t| {
                t.borrow_mut().pop();
            });
        }
    }
}

fn observe_span_metric(name: &str, dur: Duration) {
    let mut metric = String::with_capacity(9 + name.len());
    metric.push_str("exq_span_");
    metric.extend(name.chars().map(|c| if c == '.' { '_' } else { c }));
    histogram(&metric).observe_duration(dur);
}

/// Records a span with an externally measured duration — used where the
/// code already times a phase, so the span duration and the reported stat
/// are the *same* number. Feeds the span histogram even when no trace is
/// active; appends a [`SpanRec`] only under an active trace. The span's
/// start is back-dated `dur` from now.
pub fn record_span(name: &str, dur: Duration) {
    if !enabled() {
        return;
    }
    observe_span_metric(name, dur);
    TRACES.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(active) = t.last_mut() {
            let end = active.epoch.elapsed();
            let start = end.checked_sub(dur).unwrap_or(Duration::ZERO);
            let rec = SpanRec {
                trace: active.trace,
                id: fresh_id(),
                parent: active.parent,
                name: name.to_owned(),
                side: active.side,
                start_ns: start.as_nanos().min(u64::MAX as u128) as u64,
                dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
            };
            active.spans.push(rec);
        }
    });
}

/// Self-timing RAII span: times from construction to drop and becomes the
/// parent of spans recorded while it is live.
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    id: u64,
    /// Whether a collector was active at construction (and we became its
    /// current parent).
    active: bool,
    prev_parent: u64,
}

/// Opens a self-timed span. Cheap no-op (one atomic load, one `Instant`)
/// when telemetry is disabled or no trace is active.
pub fn span(name: &'static str) -> SpanGuard {
    let mut g = SpanGuard {
        name,
        start: Instant::now(),
        id: 0,
        active: false,
        prev_parent: 0,
    };
    if enabled() {
        TRACES.with(|t| {
            if let Some(a) = t.borrow_mut().last_mut() {
                g.id = fresh_id();
                g.active = true;
                g.prev_parent = a.parent;
                a.parent = g.id;
            }
        });
    }
    g
}

impl SpanGuard {
    /// Span id (0 when no trace was active), used to re-parent adopted
    /// remote spans under this span.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        if !enabled() {
            return;
        }
        observe_span_metric(self.name, dur);
        if !self.active {
            return;
        }
        TRACES.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(a) = t.last_mut() {
                a.parent = self.prev_parent;
                let end = a.epoch.elapsed();
                let start = end.checked_sub(dur).unwrap_or(Duration::ZERO);
                let rec = SpanRec {
                    trace: a.trace,
                    id: self.id,
                    parent: self.prev_parent,
                    name: self.name.to_owned(),
                    side: a.side,
                    start_ns: start.as_nanos().min(u64::MAX as u128) as u64,
                    dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                };
                a.spans.push(rec);
            }
        });
    }
}

/// Merges spans returned by the peer into this thread's active trace,
/// re-writing their trace id and hanging their roots (`parent == 0`) under
/// `parent` — typically the roundtrip span. No-op when untraced.
pub fn adopt_spans(spans: &[SpanRec], parent: u64) {
    if spans.is_empty() {
        return;
    }
    TRACES.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(a) = t.last_mut() {
            for s in spans {
                let mut s = s.clone();
                s.trace = a.trace;
                if s.parent == 0 {
                    s.parent = parent;
                }
                a.spans.push(s);
            }
        }
    });
}

// -------------------------------------------------------------- exporters --

fn trace_sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Opens (truncating) a JSON-lines trace sink; every finished trace's spans
/// are appended one JSON object per line.
pub fn set_trace_out(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *trace_sink().lock().expect("trace sink") = Some(BufWriter::new(file));
    Ok(())
}

/// Flushes and closes the trace sink (mainly for tests).
pub fn clear_trace_out() {
    if let Some(mut w) = trace_sink().lock().expect("trace sink").take() {
        let _ = w.flush();
    }
}

/// True when a trace sink is open.
pub fn trace_out_set() -> bool {
    trace_sink().lock().expect("trace sink").is_some()
}

static TRACE_ALL: AtomicBool = AtomicBool::new(false);

/// Forces per-query trace collection even without a sink — used by the
/// overhead experiment (e17) to measure span machinery without file I/O.
pub fn set_trace_all(on: bool) {
    TRACE_ALL.store(on, Ordering::Relaxed);
}

/// Should a new query start a trace? Yes when telemetry is on and either a
/// sink is open or tracing is forced.
pub fn tracing_wanted() -> bool {
    enabled() && (TRACE_ALL.load(Ordering::Relaxed) || trace_out_set())
}

/// Serializes one span as a JSON object. Span names are code-controlled
/// identifiers (no quotes/backslashes), so no escaping is needed.
pub fn span_json(s: &SpanRec) -> String {
    format!(
        "{{\"trace\":\"{:016x}\",\"id\":\"{:016x}\",\"parent\":\"{:016x}\",\
         \"name\":\"{}\",\"side\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
        s.trace,
        s.id,
        s.parent,
        s.name,
        s.side.as_str(),
        s.start_ns,
        s.dur_ns
    )
}

/// Writes a finished trace's spans to the sink, one JSON line per span.
/// Silently a no-op when no sink is open.
pub fn write_trace(spans: &[SpanRec]) {
    if spans.is_empty() {
        return;
    }
    let mut guard = trace_sink().lock().expect("trace sink");
    if let Some(w) = guard.as_mut() {
        for s in spans {
            let _ = writeln!(w, "{}", span_json(s));
        }
        let _ = w.flush();
    }
}

// ----------------------------------------------------------------- logger --

/// Log severity; `Off` silences everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Off = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
}

impl Level {
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

pub fn log_level() -> Level {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        _ => Level::Debug,
    }
}

/// Operational logging goes to **stderr** so stdout stays machine-readable.
pub fn log(level: Level, msg: &str) {
    if level == Level::Off || (level as u8) > LOG_LEVEL.load(Ordering::Relaxed) {
        return;
    }
    eprintln!("[exq:{}] {msg}", level.as_str());
}

// --------------------------------------------------------- query profiles --

/// Per-query resource profile: what one dispatched request actually cost
/// the storage engine. Collected on the serving thread between
/// [`profile_begin`] and [`profile_take`]; the storage observer and the
/// paged-store glue feed it as the work happens, so the totals are exact
/// per-request attribution, not sampled estimates. The serve paths attach
/// the profile to the request's trace spans, the slow-query log, and the
/// per-db registry counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryProfile {
    /// Buffer-pool lookups that found the page resident.
    pub pool_hits: u64,
    /// Buffer-pool lookups that missed.
    pub pool_misses: u64,
    /// Pages read from disk to satisfy this request.
    pub pages_faulted: u64,
    /// Pool evictions this request's inserts triggered.
    pub evictions: u64,
    /// Record reads that raced a checkpoint publish and retried.
    pub epoch_retries: u64,
    /// WAL bytes this request appended (mutations only).
    pub wal_bytes: u64,
    /// Store records decoded (sealed blocks, postings, metadata images).
    pub records_decoded: u64,
    /// Sealed blocks shipped in the answer.
    pub blocks_shipped: u64,
    /// Whether the response-cache probe hit.
    pub cache_hit: bool,
}

impl QueryProfile {
    /// The profile as `(span name, raw count)` pairs, for riding a trace
    /// as `profile.*` spans: the count travels in the span's nanosecond
    /// field, so profiles reach the client inside `Answer` spans with no
    /// wire-format change. Consumers (`exq explain`, the E22 experiment)
    /// read the nanos back as counts.
    pub fn span_fields(&self) -> [(&'static str, u64); 9] {
        [
            ("profile.pool_hits", self.pool_hits),
            ("profile.pool_misses", self.pool_misses),
            ("profile.pages_faulted", self.pages_faulted),
            ("profile.evictions", self.evictions),
            ("profile.epoch_retries", self.epoch_retries),
            ("profile.wal_bytes", self.wal_bytes),
            ("profile.records_decoded", self.records_decoded),
            ("profile.blocks_shipped", self.blocks_shipped),
            ("profile.cache_hit", self.cache_hit as u64),
        ]
    }
}

thread_local! {
    /// The serving thread's active profile. At most one request is
    /// dispatched per thread at a time (both serve paths execute a request
    /// start-to-finish on one worker thread), so a single slot suffices.
    static PROFILE: RefCell<Option<QueryProfile>> = const { RefCell::new(None) };
}

/// Starts profile collection on this thread. No-op when telemetry is
/// disabled, so the telemetry-off configuration pays only the master
/// switch's atomic load.
pub fn profile_begin() {
    if !enabled() {
        return;
    }
    PROFILE.with(|p| *p.borrow_mut() = Some(QueryProfile::default()));
}

/// Ends collection and returns the profile (`None` when collection never
/// began — telemetry off, or a thread that isn't serving a request).
pub fn profile_take() -> Option<QueryProfile> {
    PROFILE.with(|p| p.borrow_mut().take())
}

/// Applies `f` to this thread's active profile, if any. The inactive path
/// is a single thread-local borrow — cheap enough for pool hit/miss rates.
pub fn with_profile(f: impl FnOnce(&mut QueryProfile)) {
    PROFILE.with(|p| {
        if let Some(prof) = p.borrow_mut().as_mut() {
            f(prof);
        }
    });
}

// ------------------------------------------------------------- slow query --

static SLOW_NS: AtomicU64 = AtomicU64::new(0);

/// Queries slower than this (client-observed total) are logged at `warn`
/// and counted in `exq_slow_queries_total`. 0 disables.
pub fn set_slow_ms(ms: u64) {
    SLOW_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
}

/// Per-query bookkeeping: bumps query counters and applies the slow-query
/// threshold.
pub fn note_query(desc: &str, total: Duration, served_from_cache: bool) {
    counter("exq_queries_total").inc();
    if served_from_cache {
        counter("exq_queries_cached_total").inc();
    }
    let threshold = SLOW_NS.load(Ordering::Relaxed);
    let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
    if threshold > 0 && total_ns >= threshold {
        counter("exq_slow_queries_total").inc();
        log(
            Level::Warn,
            &format!(
                "slow query ({:.2} ms{}): {desc}",
                total.as_secs_f64() * 1e3,
                if served_from_cache { ", cached" } else { "" }
            ),
        );
    }
}

/// The nanosecond slow-query threshold currently in force (0 = disabled).
pub fn slow_threshold_ns() -> u64 {
    SLOW_NS.load(Ordering::Relaxed)
}

/// Server-side slow-request accounting: applies the slow threshold to one
/// dispatched request and, when crossed, logs the db name annotated with
/// the request's resource profile — a slow query arrives explaining *why*
/// it was slow (faults? evictions? WAL stalls?), not just that it was.
pub fn note_server_query(db: &str, total: Duration, profile: Option<&QueryProfile>) {
    let threshold = SLOW_NS.load(Ordering::Relaxed);
    let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
    if threshold == 0 || total_ns < threshold {
        return;
    }
    counter("exq_slow_queries_total").inc();
    let detail = match profile {
        Some(p) => format!(
            " [pool {}h/{}m, {} faulted, {} evicted, {} retries, {} wal B, \
             {} decoded, {} blocks, cache {}]",
            p.pool_hits,
            p.pool_misses,
            p.pages_faulted,
            p.evictions,
            p.epoch_retries,
            p.wal_bytes,
            p.records_decoded,
            p.blocks_shipped,
            if p.cache_hit { "hit" } else { "miss" },
        ),
        None => String::new(),
    };
    log(
        Level::Warn,
        &format!(
            "slow request ({:.2} ms) on db `{db}`{detail}",
            total.as_secs_f64() * 1e3
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
        for n in [0u64, 1, 2, 3, 5, 1000, u64::MAX] {
            assert!(n <= bucket_upper(bucket_index(n)));
        }
    }

    #[test]
    fn histogram_quantiles_and_invariant() {
        let h = Histogram::default();
        for nanos in [10u64, 20, 30, 1_000, 2_000, 100_000, 1_000_000] {
            h.observe(nanos);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        assert_eq!(
            h.sum_nanos(),
            10 + 20 + 30 + 1_000 + 2_000 + 100_000 + 1_000_000
        );
        // p50 lands in the bucket holding the 4th observation (1000ns →
        // bucket 9, upper bound 1023).
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1023));
        assert!(h.quantile(1.0) >= Duration::from_nanos(1_000_000));
        assert_eq!(Histogram::default().quantile(0.9), Duration::ZERO);
    }

    #[test]
    fn registry_render_sorted_and_typed() {
        let r = Registry::new();
        r.counter("zz_total").add(3);
        r.gauge("aa_gauge").set(-7);
        r.histogram("mm_hist").observe(100);
        let text = r.render();
        let aa = text.find("# TYPE aa_gauge gauge").expect("gauge line");
        let mm = text.find("# TYPE mm_hist histogram").expect("hist line");
        let zz = text.find("# TYPE zz_total counter").expect("counter line");
        assert!(aa < mm && mm < zz, "names not sorted:\n{text}");
        assert!(text.contains("zz_total 3"));
        assert!(text.contains("aa_gauge -7"));
        assert!(text.contains("mm_hist_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mm_hist_count 1"));
    }

    #[test]
    fn counter_handles_alias_one_metric() {
        let r = Registry::new();
        let a = r.counter("same");
        let b = r.counter("same");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("same").get(), 3);
    }

    #[test]
    fn trace_scope_collects_and_shields() {
        let outer = begin_trace(42, Side::Client);
        record_span("outer.work", Duration::from_millis(1));
        {
            // Simulates the in-process server dispatch on the same thread.
            let inner = begin_trace(42, Side::Server);
            record_span("inner.work", Duration::from_millis(2));
            let spans = inner.finish();
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].name, "inner.work");
            assert_eq!(spans[0].side, Side::Server);
            adopt_spans(&spans, 7);
        }
        let spans = outer.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer.work");
        assert_eq!(spans[1].name, "inner.work");
        assert_eq!(spans[1].parent, 7, "adopted root re-parented");
        assert_eq!(spans[1].trace, 42);
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn span_guard_nests_parents() {
        let scope = begin_trace(9, Side::Client);
        let parent_id;
        {
            let g = span("parent.phase");
            parent_id = g.id();
            record_span("child.phase", Duration::from_micros(5));
        }
        record_span("sibling.phase", Duration::from_micros(5));
        let spans = scope.finish();
        assert_eq!(spans.len(), 3);
        let child = spans.iter().find(|s| s.name == "child.phase").unwrap();
        assert_eq!(child.parent, parent_id);
        let parent = spans.iter().find(|s| s.name == "parent.phase").unwrap();
        assert_eq!(parent.parent, 0);
        let sib = spans.iter().find(|s| s.name == "sibling.phase").unwrap();
        assert_eq!(sib.parent, 0);
    }

    #[test]
    fn untraced_thread_records_nothing() {
        assert_eq!(current_trace(), 0);
        record_span("floating.span", Duration::from_micros(1));
        let g = span("floating.guard");
        assert_eq!(g.id(), 0);
        drop(g);
        let inert = begin_trace(0, Side::Client);
        assert!(!inert.is_active());
        assert!(inert.finish().is_empty());
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn span_json_shape() {
        let s = SpanRec {
            trace: 0xABC,
            id: 1,
            parent: 0,
            name: "client.translate".into(),
            side: Side::Client,
            start_ns: 5,
            dur_ns: 17,
        };
        let j = span_json(&s);
        assert!(j.contains("\"trace\":\"0000000000000abc\""));
        assert!(j.contains("\"name\":\"client.translate\""));
        assert!(j.contains("\"side\":\"client\""));
        assert!(j.contains("\"dur_ns\":17"));
    }

    #[test]
    fn fresh_ids_distinct_and_nonzero() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn label_escaping_is_injective_on_hostile_pairs() {
        // The classic collision: `a"}` raw vs `a\"}` would render the same
        // without injective escaping.
        assert_ne!(escape_label("a\"}"), escape_label("a\\\"}"));
        assert_eq!(escape_label("plain-db_1.x"), "plain-db_1.x");
        assert_eq!(escape_label("q\"uote"), "q\\\"uote");
        assert_eq!(escape_label("back\\slash"), "back\\\\slash");
        assert_eq!(escape_label("new\nline"), "new\\nline");
        assert_ne!(db_series("m", "a\"}"), db_series("m", "a\\\"}"));
    }

    #[test]
    fn remove_db_series_drops_only_that_db() {
        let r = Registry::new();
        r.counter(&db_series("exq_test_requests_total", "keep"))
            .add(1);
        r.counter(&db_series("exq_test_requests_total", "gone"))
            .add(2);
        r.gauge(&db_series("exq_test_depth", "gone")).set(9);
        r.counter("exq_test_global_total").add(5);
        let removed = r.remove_db_series("gone");
        assert_eq!(removed, 2);
        let text = r.render();
        assert!(text.contains("{db=\"keep\"}"));
        assert!(!text.contains("{db=\"gone\"}"));
        assert!(text.contains("exq_test_global_total 5"));
        assert_eq!(r.remove_db_series("gone"), 0);
    }

    #[test]
    fn profile_collects_only_between_begin_and_take() {
        assert_eq!(profile_take(), None);
        with_profile(|p| p.pool_hits += 1); // inactive: dropped
        profile_begin();
        with_profile(|p| {
            p.pool_hits += 2;
            p.wal_bytes += 100;
        });
        with_profile(|p| p.cache_hit = true);
        let p = profile_take().expect("profile active");
        assert_eq!(p.pool_hits, 2);
        assert_eq!(p.wal_bytes, 100);
        assert!(p.cache_hit);
        assert_eq!(profile_take(), None, "take clears the slot");
    }
}
