//! The untrusted server (§6.2).
//!
//! The server stores the visible document, the sealed blocks, and the
//! metadata `M` (DSI index table, block table, OPESS value indexes). Query
//! answering follows the paper's three steps:
//!
//! 1. **structure translation** — each query step's tags are looked up in
//!    the DSI index table to obtain candidate interval lists;
//! 2. **value translation** — each value predicate's ciphertext range is
//!    scanned in the B-tree, yielding the set of blocks containing matching
//!    occurrences;
//! 3. **final joins** — structural semi-joins (forward and backward passes)
//!    prune the candidates; surviving anchor-step matches determine the
//!    pruned visible document and the block set shipped to the client.
//!
//! The server never decrypts anything; it cannot, it has no keys.

use crate::cache::{CacheStatsSnapshot, ServerCaches};
use crate::codec::WireCodec;
use crate::encrypt::{EncryptedOutput, ServerMetadata, BLOCK_MARKER_TAG};
use crate::error::CoreError;
use crate::persist::BlockEncCache;
use crate::store::{BlockStore, PagedDb};
use crate::telemetry;
use crate::wire::{SAxis, SPred, SStep, ServerQuery, ServerResponse};
use exq_crypto::SealedBlock;
use exq_index::dsi::Interval;
use exq_index::sjoin::{sort_intervals, IntervalUniverse};
use exq_xml::{Document, NodeId};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// One step of an [`ExplainReport`].
#[derive(Debug, Clone)]
pub struct ExplainStep {
    /// Server-visible tag keys probed in the DSI table.
    pub tags: Vec<String>,
    /// Interval candidates the table returned.
    pub candidates: usize,
    /// Candidates surviving axis + predicate filtering and the backward pass.
    pub survivors: usize,
    /// Number of predicates evaluated at this step.
    pub predicates: usize,
}

/// Server-side execution explanation (candidate pruning per step).
#[derive(Debug, Clone)]
pub struct ExplainReport {
    pub steps: Vec<ExplainStep>,
    /// The anchor step index whose matches determine the response.
    pub anchor: usize,
    /// Matches at the anchor step.
    pub anchors: usize,
}

/// The hosting server.
#[derive(Debug, Clone)]
pub struct Server {
    visible: Document,
    interval_to_visible: HashMap<Interval, NodeId>,
    metadata: ServerMetadata,
    universe: IntervalUniverse,
    /// Top-level universe intervals (no enclosing member), precomputed
    /// whenever the universe is (re)built so `apply_axis` from the document
    /// node is a set probe instead of a per-candidate containment stab.
    top_level: HashSet<Interval>,
    /// Sealed blocks: fully resident, or paged in through an out-of-core
    /// store (see `crate::store`).
    blocks: BlockStore,
    /// Blocks tombstoned by deletions (update support).
    dead_blocks: HashSet<u32>,
    /// Append-only memo of the serialized block section (see
    /// [`BlockEncCache`]). Runtime-only; cloning yields a fresh cache.
    enc_cache: BlockEncCache,
    /// Worker threads for intra-query candidate filtering and response
    /// assembly (resolved; >= 1). Runtime-only: not persisted.
    threads: usize,
    /// Response + value-range caches with the generation counter.
    /// Runtime-only: not persisted, and cloning yields fresh empty caches.
    caches: ServerCaches,
}

/// Per-query resolution of every ciphertext value range to its matching
/// live-block set (the lazy "step 2" of query answering, §6.2, hoisted to a
/// pre-pass). Built once per query from the *query alone* — the entries
/// depend only on the B-trees, never on which candidate is being tested —
/// so predicate filtering over it is read-only and safe to fan out across
/// threads.
#[derive(Debug, Default)]
struct ValueBlockCache {
    /// Shared with the cross-query range cache on hits: an `Arc` clone
    /// instead of a set copy.
    by_range: HashMap<(String, u128, u128), Arc<HashSet<u32>>>,
}

impl ValueBlockCache {
    fn get(&self, attr: &str, lo: u128, hi: u128) -> Option<&HashSet<u32>> {
        self.by_range
            .get(&(attr.to_owned(), lo, hi))
            .map(Arc::as_ref)
    }
}

impl Server {
    /// Builds the server from the owner's encrypted output.
    pub fn new(out: &EncryptedOutput) -> Server {
        let universe = IntervalUniverse::new(out.metadata.dsi_table.all_intervals().to_vec());
        let top_level = universe.roots().collect();
        let mut interval_to_visible = HashMap::new();
        for n in out.visible.iter() {
            if let Some(Some(iv)) = out.visible_intervals.get(n.index()) {
                interval_to_visible.insert(*iv, n);
            }
        }
        Server {
            visible: out.visible.clone(),
            interval_to_visible,
            metadata: out.metadata.clone(),
            universe,
            top_level,
            blocks: BlockStore::Resident(out.blocks.iter().cloned().map(Arc::new).collect()),
            dead_blocks: HashSet::new(),
            enc_cache: BlockEncCache::default(),
            threads: crate::pool::default_threads(),
            caches: ServerCaches::default(),
        }
    }

    /// Sets the intra-query worker count; `0` means auto (the `EXQ_THREADS`
    /// / available-parallelism resolution). Intra-query parallelism composes
    /// with the transport layer's connection concurrency: queries run under
    /// the serve loop's `RwLock` *read* guard, so concurrent clients and
    /// these workers share the server without exclusion.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = crate::pool::resolve_threads(threads);
    }

    /// The resolved intra-query worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reconfigures the cache capacity (entries per cache layer).
    /// `Some(0)` disables caching; `None` resolves from `EXQ_CACHE` /
    /// the default. Existing entries and counters are dropped.
    pub fn set_cache_entries(&mut self, entries: Option<usize>) {
        self.caches
            .set_capacity(crate::cache::resolve_cache_entries(entries));
    }

    /// The configured cache capacity (0 = caching off).
    pub fn cache_entries(&self) -> usize {
        self.caches.capacity()
    }

    /// Labels this server's caches with a tenant db name: hit/miss/eviction
    /// counts become `{db="<name>"}`-labeled registry series, so
    /// `exq stats` can break out per-tenant cache traffic and the
    /// `CacheStats` wire reply reads the same atomics as the metrics
    /// scrape. Existing entries and local counters are dropped.
    pub fn set_cache_db_label(&mut self, db: &str) {
        self.caches.set_db_label(db);
    }

    /// Point-in-time cache counters (also served over the wire via
    /// `CacheStatsReq`).
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.caches.snapshot()
    }

    /// True when a block id refers to live data.
    pub(crate) fn block_live(&self, id: u32) -> bool {
        !self.dead_blocks.contains(&id) && (id as usize) < self.blocks.len()
    }

    /// Total bytes the server hosts (visible doc + blocks) — what the naive
    /// method ships for every query. For a paged server the block total is
    /// tracked, not recomputed, so this never touches disk.
    pub fn hosted_bytes(&self) -> usize {
        self.visible.serialized_size() + self.blocks.payload_bytes() as usize
    }

    /// Total stored bytes of every sealed block (tombstoned included).
    pub(crate) fn payload_bytes(&self) -> u64 {
        self.blocks.payload_bytes()
    }

    /// Number of sealed blocks hosted.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Fetches one sealed block by id (used by the MIN/MAX aggregate path,
    /// which ships a single block instead of a query response). On a paged
    /// server this may read from disk; a store failure is a typed error,
    /// never a silently-missing block.
    pub fn fetch_block(&self, id: u32) -> Result<Option<exq_crypto::SealedBlock>, CoreError> {
        if !self.block_live(id) {
            return Ok(None);
        }
        Ok(self.blocks.get(id)?.map(|b| (*b).clone()))
    }

    // --- out-of-core plumbing (see `crate::store`) ------------------------

    /// The paged store backing this server, when hosted out-of-core.
    pub fn paged_store(&self) -> Option<Arc<PagedDb>> {
        match &self.blocks {
            BlockStore::Resident(_) => None,
            BlockStore::Paged { db, .. } => Some(Arc::clone(db)),
        }
    }

    /// Converts a resident server to paged mode. The store must already
    /// hold every block (a full checkpoint ran); the resident copies drop.
    pub(crate) fn attach_paged(&mut self, db: Arc<PagedDb>) {
        if let BlockStore::Resident(v) = &self.blocks {
            let payload_bytes = v.iter().map(|b| b.stored_size() as u64).sum();
            self.blocks = BlockStore::Paged {
                db,
                count: v.len() as u32,
                payload_bytes,
                overlay: HashMap::new(),
            };
        }
    }

    /// Blocks inserted since the last checkpoint, in id order.
    pub(crate) fn overlay_blocks(&self) -> Vec<(u32, Arc<SealedBlock>)> {
        match &self.blocks {
            BlockStore::Resident(_) => Vec::new(),
            BlockStore::Paged { overlay, .. } => {
                let mut v: Vec<(u32, Arc<SealedBlock>)> =
                    overlay.iter().map(|(&id, b)| (id, Arc::clone(b))).collect();
                v.sort_unstable_by_key(|&(id, _)| id);
                v
            }
        }
    }

    /// Drops overlay entries the predicate marks durable (checkpointed).
    pub(crate) fn drain_overlay_if(&mut self, durable: impl Fn(u32) -> bool) {
        if let BlockStore::Paged { overlay, .. } = &mut self.blocks {
            overlay.retain(|&id, _| !durable(id));
        }
    }

    /// Appends a mutation record to the WAL when paged (fsync = commit);
    /// a no-op for resident servers.
    pub(crate) fn log_mutation(&self, kind: u8, payload: &[u8]) -> Result<(), CoreError> {
        if let BlockStore::Paged { db, .. } = &self.blocks {
            db.append_wal(kind, payload)?;
        }
        Ok(())
    }

    /// The serialized-block-section memo (see `crate::persist`).
    pub(crate) fn enc_cache(&self) -> &BlockEncCache {
        &self.enc_cache
    }

    /// Read-only access to the hosted metadata (used by the security
    /// analysis, which models an attacker *on* the server).
    pub fn metadata(&self) -> &ServerMetadata {
        &self.metadata
    }

    // --- update-support plumbing (see `crate::update`) -------------------

    pub(crate) fn visible_node_of(&self, iv: &Interval) -> Option<NodeId> {
        self.interval_to_visible
            .get(iv)
            .copied()
            .filter(|&n| self.visible.is_live(n))
    }

    pub(crate) fn visible_element_name(&self, n: NodeId) -> Option<&str> {
        self.visible.element_name(n)
    }

    /// Every server-known interval strictly inside `parent` (table entries
    /// plus visible-node intervals, including text).
    pub(crate) fn known_intervals_within(&self, parent: &Interval) -> Vec<Interval> {
        let mut out: Vec<Interval> = self
            .metadata
            .dsi_table
            .all_intervals()
            .iter()
            .filter(|iv| parent.contains(iv))
            .copied()
            .collect();
        out.extend(
            self.interval_to_visible
                .keys()
                .filter(|iv| parent.contains(iv))
                .copied(),
        );
        out
    }

    pub(crate) fn push_block(&mut self, block: SealedBlock) {
        self.blocks.push(block);
        self.caches.bump_generation();
    }

    pub(crate) fn apply_metadata_delta(
        &mut self,
        dsi_entries: &[(String, Interval)],
        block_entries: &[(Interval, u32)],
        value_entries: &[(String, u128, u32)],
    ) {
        for (tag, iv) in dsi_entries {
            self.metadata.dsi_table.add(tag, *iv);
        }
        self.metadata.dsi_table.seal();
        for &(iv, id) in block_entries {
            self.metadata.block_table.add(iv, id);
        }
        self.metadata.block_table.seal();
        for (attr, cipher, id) in value_entries {
            self.metadata
                .value_indexes
                .entry(attr.clone())
                .or_default()
                .insert(*cipher, *id);
        }
        self.rebuild_universe();
    }

    pub(crate) fn rebuild_universe(&mut self) {
        self.universe = IntervalUniverse::new(self.metadata.dsi_table.all_intervals().to_vec());
        self.top_level = self.universe.roots().collect();
        self.caches.bump_generation();
    }

    /// Splices an `_exq_iv`-annotated fragment under a visible parent,
    /// registering the new intervals.
    pub(crate) fn splice_annotated(
        &mut self,
        frag: &Document,
        node: NodeId,
        vis_parent: NodeId,
    ) -> Result<(), CoreError> {
        use crate::update::IV_ATTR;
        let parse_iv = |v: &str| -> Result<Interval, CoreError> {
            let (lo, hi) = v
                .split_once(',')
                .ok_or_else(|| CoreError::Response("bad interval annotation".into()))?;
            let lo = lo
                .parse()
                .map_err(|_| CoreError::Response("bad interval lo".into()))?;
            let hi = hi
                .parse()
                .map_err(|_| CoreError::Response("bad interval hi".into()))?;
            // The annotation comes from the (untrusted-at-this-layer) wire;
            // reject inverted intervals rather than trip Interval::new's
            // invariant.
            if lo >= hi {
                return Err(CoreError::Response("inverted interval annotation".into()));
            }
            Ok(Interval::new(lo, hi))
        };
        match frag.node(node).kind() {
            exq_xml::NodeKind::Element(t) => {
                let name = frag.tag_name(*t).to_owned();
                let el = self.visible.add_element(Some(vis_parent), &name);
                // First pass: collect annotations and real attributes.
                let mut own_iv = None;
                let mut attr_ivs: Vec<(String, Interval)> = Vec::new();
                let mut real_attrs: Vec<(String, String)> = Vec::new();
                for &a in frag.node(node).attrs() {
                    if let exq_xml::NodeKind::Attribute(at, v) = frag.node(a).kind() {
                        let an = frag.tag_name(*at);
                        if an == IV_ATTR {
                            own_iv = Some(parse_iv(v)?);
                        } else if let Some(real) = an.strip_prefix(&format!("{IV_ATTR}_")) {
                            attr_ivs.push((real.to_owned(), parse_iv(v)?));
                        } else {
                            real_attrs.push((an.to_owned(), v.clone()));
                        }
                    }
                }
                let own_iv = own_iv
                    .ok_or_else(|| CoreError::Response("unannotated fragment node".into()))?;
                self.interval_to_visible.insert(own_iv, el);
                for (an, v) in &real_attrs {
                    let attr = self.visible.add_attr(el, an, v);
                    if let Some((_, aiv)) = attr_ivs.iter().find(|(n, _)| n == an) {
                        self.interval_to_visible.insert(*aiv, attr);
                    }
                }
                for &c in frag.node(node).children() {
                    self.splice_annotated(frag, c, el)?;
                }
                Ok(())
            }
            exq_xml::NodeKind::Text(v) => {
                self.visible.add_text(vis_parent, v);
                Ok(())
            }
            exq_xml::NodeKind::Attribute(..) => Ok(()),
        }
    }

    // --- persistence plumbing (see `crate::persist`) ----------------------

    /// `(pre-order position among elements+attributes, interval)` pairs for
    /// the visible document — the persistence keying of the interval map.
    pub(crate) fn interval_positions(&self) -> Vec<(usize, Interval)> {
        let node_to_iv: HashMap<NodeId, Interval> = self
            .interval_to_visible
            .iter()
            .map(|(&iv, &n)| (n, iv))
            .collect();
        self.visible
            .iter()
            .filter(|&n| !self.visible.node(n).is_text())
            .enumerate()
            .filter_map(|(pos, n)| node_to_iv.get(&n).map(|&iv| (pos, iv)))
            .collect()
    }

    /// Every hosted block in id order. Pages the whole database in when
    /// out-of-core (full save / naive answer paths only).
    pub(crate) fn collect_blocks(&self) -> Result<Vec<Arc<SealedBlock>>, CoreError> {
        self.blocks.collect()
    }

    pub(crate) fn dead_block_ids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.dead_blocks.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Reassembles a server from persisted parts (resident blocks).
    pub(crate) fn from_parts(
        visible: Document,
        pos_intervals: HashMap<usize, Interval>,
        metadata: ServerMetadata,
        blocks: Vec<SealedBlock>,
        dead_blocks: HashSet<u32>,
    ) -> Server {
        Self::from_store_parts(
            visible,
            pos_intervals,
            metadata,
            BlockStore::Resident(blocks.into_iter().map(Arc::new).collect()),
            dead_blocks,
        )
    }

    /// Reassembles a server around an arbitrary block store (the paged
    /// open path hands in a `BlockStore::Paged`).
    pub(crate) fn from_store_parts(
        visible: Document,
        pos_intervals: HashMap<usize, Interval>,
        metadata: ServerMetadata,
        blocks: BlockStore,
        dead_blocks: HashSet<u32>,
    ) -> Server {
        let mut interval_to_visible = HashMap::with_capacity(pos_intervals.len());
        for (pos, n) in visible
            .iter()
            .filter(|&n| !visible.node(n).is_text())
            .enumerate()
        {
            if let Some(&iv) = pos_intervals.get(&pos) {
                interval_to_visible.insert(iv, n);
            }
        }
        let universe = IntervalUniverse::new(metadata.dsi_table.all_intervals().to_vec());
        let top_level = universe.roots().collect();
        Server {
            visible,
            interval_to_visible,
            metadata,
            universe,
            top_level,
            blocks,
            dead_blocks,
            enc_cache: BlockEncCache::default(),
            threads: crate::pool::default_threads(),
            caches: ServerCaches::default(),
        }
    }

    /// Removes a victim interval's visible subtree and metadata; `false`
    /// when the victim lives strictly inside a block (cannot be removed).
    pub(crate) fn remove_visible_subtree(&mut self, victim: &Interval) -> bool {
        let Some(vis) = self.visible_node_of(victim) else {
            return false;
        };
        self.visible.detach(vis);
        self.interval_to_visible.retain(|iv, _| !victim.covers(iv));
        self.metadata.dsi_table.remove_within(*victim);
        for id in self.metadata.block_table.remove_within(*victim) {
            self.dead_blocks.insert(id);
        }
        self.caches.bump_generation();
        true
    }

    /// The visible document as the attacker sees it.
    pub fn visible_xml(&self) -> String {
        self.visible.to_xml()
    }

    /// The naive method of §7.3: ship the entire hosted database. On a
    /// paged server this reads every block back through the buffer pool.
    pub fn answer_naive(&self) -> Result<ServerResponse, CoreError> {
        let start = Instant::now();
        let resp = ServerResponse {
            pruned_xml: self.visible.to_xml(),
            blocks: self
                .collect_blocks()?
                .into_iter()
                .filter(|b| self.block_live(b.id))
                .collect(),
            translate_time: std::time::Duration::ZERO,
            process_time: start.elapsed(),
            served_from_cache: false,
            spans: Vec::new(),
        };
        telemetry::record_span("server.assemble", resp.process_time);
        Ok(resp)
    }

    /// Whether the response cache already holds the answer to `q` under the
    /// current generation. A pure probe for the serve loop's admission
    /// control: no LRU promotion, no hit/miss counting.
    pub fn has_cached_response(&self, q: &ServerQuery) -> bool {
        !q.steps.is_empty()
            && self
                .caches
                .responses
                .peek(&q.encode(), self.caches.generation())
    }

    /// Answers a translated query. Fallible because a paged server reads
    /// shipped blocks through the store; a read failure is a typed error
    /// answered as an error frame — never a partial response.
    pub fn answer(&self, q: &ServerQuery) -> Result<ServerResponse, CoreError> {
        if q.steps.is_empty() {
            // Degenerate query (`.`): equivalent to the naive method.
            // Not cached — it ships the whole database anyway.
            return self.answer_naive();
        }
        // Response cache: deterministic tag/OPESS encryption makes
        // identical client queries encode to byte-identical `ServerQuery`s,
        // so the canonical encoding is the memo key. Entries are tagged
        // with the generation captured *before* computing; queries run
        // under the serve loop's read guard and mutations under its write
        // guard, so the generation cannot move mid-query.
        let generation = self.caches.generation();
        let cache_key = if self.caches.responses.enabled() {
            // Time the key encode + probe for real: a warm query's
            // `translate_time` is its probe cost, not a fake zero.
            let t_probe = Instant::now();
            let key = q.encode();
            let probe = self.caches.responses.get(&key, generation);
            let probe_time = t_probe.elapsed();
            telemetry::record_span("server.cache_probe", probe_time);
            if let Some(hit) = probe {
                let t = Instant::now();
                let pruned_xml = hit.pruned_xml.clone();
                // Arc clones — the ciphertext payloads are shared, not copied.
                let blocks = hit.blocks.clone();
                let assemble_time = t.elapsed();
                telemetry::record_span("server.assemble", assemble_time);
                return Ok(ServerResponse {
                    pruned_xml,
                    blocks,
                    translate_time: probe_time,
                    process_time: assemble_time,
                    served_from_cache: true,
                    spans: Vec::new(),
                });
            }
            Some(key)
        } else {
            None
        };
        // Step 1: structure translation — candidate intervals per step.
        let t0 = Instant::now();
        let step_candidates: Vec<Vec<Interval>> =
            q.steps.iter().map(|s| self.candidates(s)).collect();
        let translate_time = t0.elapsed();
        // The span *is* the reported stat: same measured duration.
        telemetry::record_span("server.dsi_lookup", translate_time);

        let t1 = Instant::now();
        // Step 2 up front: resolve every ciphertext range in the query to
        // its block set, so the per-candidate passes below are read-only.
        let t_resolve = Instant::now();
        let cache = self.build_value_cache(&q.steps);
        telemetry::record_span("server.value_resolve", t_resolve.elapsed());
        let t_sjoin = Instant::now();
        let survivors = self.match_survivors(q, &step_candidates, &cache);
        let n = q.steps.len();
        // Step 3: response assembly. Ship every anchor match's region plus
        // one witness region per predicate at steps above the anchor, so
        // the client can re-verify the full query exactly.
        let anchor_idx = q.anchor.min(n.saturating_sub(1));
        let mut targets: Vec<Interval> = survivors[anchor_idx].clone();
        for (i, step) in q.steps.iter().enumerate().take(anchor_idx) {
            if step.preds.is_empty() {
                continue;
            }
            let witnesses = crate::pool::parallel_map(self.threads, &survivors[i], |c| {
                step.preds
                    .iter()
                    .filter_map(|pred| self.pred_witness(c, pred, &cache))
                    .collect::<Vec<Interval>>()
            });
            targets.extend(witnesses.into_iter().flatten());
        }
        telemetry::record_span("server.sjoin", t_sjoin.elapsed());
        let t_assemble = Instant::now();
        let (pruned_xml, blocks) = self.assemble(&targets)?;
        telemetry::record_span("server.assemble", t_assemble.elapsed());
        let resp = ServerResponse {
            pruned_xml,
            blocks,
            translate_time,
            process_time: t1.elapsed(),
            served_from_cache: false,
            spans: Vec::new(),
        };
        if let Some(key) = cache_key {
            self.caches
                .responses
                .insert(key, Arc::new(resp.clone()), generation);
        }
        Ok(resp)
    }

    /// Resolves one ciphertext range against an attribute's B-tree,
    /// dropping tombstoned blocks.
    fn value_blocks(&self, attr: &str, lo: u128, hi: u128) -> HashSet<u32> {
        self.metadata
            .value_indexes
            .get(attr)
            .map(|t| {
                t.range(lo, hi)
                    .into_iter()
                    .filter(|&b| self.block_live(b))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Walks every predicate reachable from `steps` (including relative
    /// patterns nested inside predicates) and resolves each encrypted value
    /// range once. The resulting cache depends only on the query and the
    /// hosted indexes — never on a candidate — so all later passes share it
    /// immutably.
    fn build_value_cache(&self, steps: &[SStep]) -> ValueBlockCache {
        fn walk(server: &Server, generation: u64, steps: &[SStep], cache: &mut ValueBlockCache) {
            for step in steps {
                for pred in &step.preds {
                    match pred {
                        SPred::Exists(inner) => walk(server, generation, inner, cache),
                        SPred::Value { path, range, .. } => {
                            walk(server, generation, path, cache);
                            if let Some((attr, r)) = range {
                                let key = (attr.clone(), r.lo, r.hi);
                                // Consult the cross-query range cache on a
                                // per-query miss; resolve and publish when
                                // the shared cache misses too.
                                cache.by_range.entry(key.clone()).or_insert_with(|| {
                                    server.caches.ranges.get(&key, generation).unwrap_or_else(
                                        || {
                                            let set =
                                                Arc::new(server.value_blocks(attr, r.lo, r.hi));
                                            server.caches.ranges.insert(
                                                key.clone(),
                                                set.clone(),
                                                generation,
                                            );
                                            set
                                        },
                                    )
                                });
                            }
                        }
                    }
                }
            }
        }
        let mut cache = ValueBlockCache::default();
        walk(self, self.caches.generation(), steps, &mut cache);
        cache
    }

    /// One witness interval demonstrating that `pred` holds at `ctx`
    /// (shipped so the client can re-check the predicate exactly).
    fn pred_witness(
        &self,
        ctx: &Interval,
        pred: &SPred,
        cache: &ValueBlockCache,
    ) -> Option<Interval> {
        match pred {
            SPred::Exists(steps) => self.eval_relative(*ctx, steps, cache).into_iter().next(),
            SPred::Value { path, range, plain } => {
                let targets = if path.is_empty() {
                    vec![*ctx]
                } else {
                    self.eval_relative(*ctx, path, cache)
                };
                let matching_blocks: Option<&HashSet<u32>> = range
                    .as_ref()
                    .and_then(|(attr, r)| cache.get(attr, r.lo, r.hi));
                targets.into_iter().find(|t| {
                    let plain_ok = plain.as_ref().is_some_and(|(op, lit)| {
                        self.interval_to_visible.get(t).is_some_and(|&n| {
                            op.holds(lit.compare_with(&self.visible.text_value(n)))
                        })
                    });
                    let enc_ok = matching_blocks.is_some_and(|set| {
                        self.metadata
                            .block_table
                            .covering_block(t)
                            .is_some_and(|b| set.contains(&b))
                    });
                    plain_ok || enc_ok
                })
            }
        }
    }

    /// Explains how a translated query would execute: per-step candidate
    /// counts from the DSI table, survivors after the forward pass
    /// (axis + predicate filtering), and survivors after the backward pass —
    /// the server-side equivalent of a database EXPLAIN.
    pub fn explain(&self, q: &ServerQuery) -> ExplainReport {
        let step_candidates: Vec<Vec<Interval>> =
            q.steps.iter().map(|s| self.candidates(s)).collect();
        let survivors = if q.steps.is_empty() {
            Vec::new()
        } else {
            let cache = self.build_value_cache(&q.steps);
            self.match_survivors(q, &step_candidates, &cache)
        };
        let steps = q
            .steps
            .iter()
            .enumerate()
            .map(|(i, step)| ExplainStep {
                tags: step.tags.clone(),
                candidates: step_candidates.get(i).map_or(0, Vec::len),
                survivors: survivors.get(i).map_or(0, Vec::len),
                predicates: step.preds.len(),
            })
            .collect();
        let anchor = q.anchor.min(q.steps.len().saturating_sub(1));
        let anchors = survivors.get(anchor).map_or(0, Vec::len);
        ExplainReport {
            steps,
            anchor,
            anchors,
        }
    }

    /// Matches a query's intervals at the final step (used by updates to
    /// locate parents/victims without assembling a response).
    pub fn locate(&self, q: &ServerQuery) -> Vec<Interval> {
        if q.steps.is_empty() {
            return Vec::new();
        }
        let step_candidates: Vec<Vec<Interval>> =
            q.steps.iter().map(|s| self.candidates(s)).collect();
        let cache = self.build_value_cache(&q.steps);
        let survivors = self.match_survivors(q, &step_candidates, &cache);
        survivors.last().cloned().unwrap_or_default()
    }

    /// Forward + backward structural passes; returns per-step survivors.
    ///
    /// Predicate filtering is the per-candidate hot loop: every candidate's
    /// predicates evaluate independently against the immutable value cache,
    /// so the filter fans out across the configured worker threads while
    /// keeping the serial path's candidate order exactly.
    fn match_survivors(
        &self,
        q: &ServerQuery,
        step_candidates: &[Vec<Interval>],
        cache: &ValueBlockCache,
    ) -> Vec<Vec<Interval>> {
        // Forward pass with predicate filtering.
        let mut survivors: Vec<Vec<Interval>> = Vec::with_capacity(q.steps.len());
        for (i, step) in q.steps.iter().enumerate() {
            let ctx: Option<&[Interval]> = if i == 0 {
                None
            } else {
                Some(&survivors[i - 1])
            };
            let mut cands = self.apply_axis(ctx, step.axis, &step_candidates[i]);
            if !step.preds.is_empty() {
                cands = crate::pool::parallel_filter(self.threads, cands, |c| {
                    step.preds.iter().all(|p| self.pred_holds(c, p, cache))
                });
            }
            let empty = cands.is_empty();
            survivors.push(cands);
            if empty {
                break;
            }
        }
        while survivors.len() < q.steps.len() {
            survivors.push(Vec::new());
        }

        // Backward pass: keep only intervals leading to a full match.
        // Splitting the survivor list gives simultaneous access to level i
        // (mutable) and level i+1 (shared) without cloning level i+1.
        let n = q.steps.len();
        for i in (0..n.saturating_sub(1)).rev() {
            let next_axis = q.steps[i + 1].axis;
            let (head, tail) = survivors.split_at_mut(i + 1);
            let cur = &mut head[i];
            let next: &[Interval] = &tail[0];
            match next_axis {
                SAxis::Descendant => {
                    let keep = exq_index::sjoin::semijoin_anc(cur, next);
                    let kept: Vec<Interval> = keep.into_iter().map(|k| cur[k]).collect();
                    *cur = kept;
                }
                SAxis::DescendantOrSelf => {
                    let keep: HashSet<usize> = exq_index::sjoin::semijoin_anc(cur, next)
                        .into_iter()
                        .collect();
                    let next_set: HashSet<Interval> = next.iter().copied().collect();
                    let kept: Vec<Interval> = cur
                        .iter()
                        .enumerate()
                        .filter(|(k, c)| keep.contains(k) || next_set.contains(*c))
                        .map(|(_, c)| *c)
                        .collect();
                    *cur = kept;
                }
                SAxis::Child | SAxis::Attribute => {
                    let parents: HashSet<Interval> = next
                        .iter()
                        .filter_map(|d| self.universe.tightest_container(d))
                        .collect();
                    cur.retain(|c| parents.contains(c));
                }
            }
        }

        survivors
    }

    /// DSI-table lookups for one step. The table guarantees sortedness at
    /// seal time (posting lists and the interval union), so the common
    /// cases — wildcard and single-tag — copy a pre-sorted slice with no
    /// per-query sort; only multi-tag unions still merge.
    fn candidates(&self, step: &SStep) -> Vec<Interval> {
        match step.tags.as_slice() {
            // Wildcard: the sorted, deduped union is precomputed.
            [] => self.metadata.dsi_table.all_intervals().to_vec(),
            [tag] => {
                let list = self.metadata.dsi_table.lookup(tag);
                debug_assert!(
                    list.windows(2)
                        .all(|w| (w[0].lo, std::cmp::Reverse(w[0].hi))
                            < (w[1].lo, std::cmp::Reverse(w[1].hi))),
                    "DSI posting list for {tag:?} not sorted/deduped at seal time"
                );
                list.to_vec()
            }
            tags => {
                let mut out: Vec<Interval> = tags
                    .iter()
                    .flat_map(|t| self.metadata.dsi_table.lookup(t).iter().copied())
                    .collect();
                sort_intervals(&mut out);
                out.dedup();
                out
            }
        }
    }

    /// Applies an axis between a context set (`None` = the virtual document
    /// node) and candidates. Inputs and output are sorted interval lists.
    fn apply_axis(
        &self,
        ctx: Option<&[Interval]>,
        axis: SAxis,
        cands: &[Interval],
    ) -> Vec<Interval> {
        match ctx {
            None => match axis {
                // From the document node, descendant(-or-self) reaches
                // everything.
                SAxis::Descendant | SAxis::DescendantOrSelf => cands.to_vec(),
                // Child of the document node = top-level intervals
                // (precomputed whenever the universe is rebuilt).
                SAxis::Child | SAxis::Attribute => cands
                    .iter()
                    .copied()
                    .filter(|c| self.top_level.contains(c))
                    .collect(),
            },
            Some(ctx) => match axis {
                SAxis::Descendant => {
                    let idx = exq_index::sjoin::semijoin_desc(ctx, cands);
                    idx.into_iter().map(|i| cands[i]).collect()
                }
                SAxis::DescendantOrSelf => {
                    let ctx_set: HashSet<Interval> = ctx.iter().copied().collect();
                    let mut out: Vec<Interval> = exq_index::sjoin::semijoin_desc(ctx, cands)
                        .into_iter()
                        .map(|i| cands[i])
                        .collect();
                    out.extend(cands.iter().copied().filter(|c| ctx_set.contains(c)));
                    exq_index::sjoin::sort_intervals(&mut out);
                    out.dedup();
                    out
                }
                SAxis::Child | SAxis::Attribute => {
                    let ctx_set: HashSet<Interval> = ctx.iter().copied().collect();
                    cands
                        .iter()
                        .copied()
                        .filter(|c| {
                            self.universe
                                .tightest_container(c)
                                .is_some_and(|t| ctx_set.contains(&t))
                        })
                        .collect()
                }
            },
        }
    }

    /// Evaluates a relative pattern from a single context interval.
    fn eval_relative(
        &self,
        ctx: Interval,
        steps: &[SStep],
        cache: &ValueBlockCache,
    ) -> Vec<Interval> {
        let mut cur = vec![ctx];
        for step in steps {
            let cands = self.candidates(step);
            let mut next = self.apply_axis(Some(&cur), step.axis, &cands);
            next.retain(|c| step.preds.iter().all(|p| self.pred_holds(c, p, cache)));
            cur = next;
            if cur.is_empty() {
                break;
            }
        }
        cur
    }

    fn pred_holds(&self, ctx: &Interval, pred: &SPred, cache: &ValueBlockCache) -> bool {
        match pred {
            SPred::Exists(steps) => !self.eval_relative(*ctx, steps, cache).is_empty(),
            SPred::Value { path, range, plain } => {
                let targets = if path.is_empty() {
                    vec![*ctx]
                } else {
                    self.eval_relative(*ctx, path, cache)
                };
                if targets.is_empty() {
                    return false;
                }
                let resolved;
                let matching_blocks: Option<&HashSet<u32>> = match range {
                    None => None,
                    Some((attr, r)) => match cache.get(attr, r.lo, r.hi) {
                        Some(set) => Some(set),
                        // A range the pre-pass did not see (defensive only:
                        // `build_value_cache` walks every reachable pred).
                        None => {
                            resolved = self.value_blocks(attr, r.lo, r.hi);
                            Some(&resolved)
                        }
                    },
                };
                targets.iter().any(|t| {
                    let plain_ok = plain.as_ref().is_some_and(|(op, lit)| {
                        self.interval_to_visible.get(t).is_some_and(|&n| {
                            op.holds(lit.compare_with(&self.visible.text_value(n)))
                        })
                    });
                    let enc_ok = matching_blocks.is_some_and(|set| {
                        self.metadata
                            .block_table
                            .covering_block(t)
                            .is_some_and(|b| set.contains(&b))
                    });
                    plain_ok || enc_ok
                })
            }
        }
    }

    /// Builds the pruned visible document + block set for the anchor set.
    ///
    /// Region pruning runs per anchor match on the worker pool: each anchor
    /// independently walks its ancestor chain and subtree, collecting the
    /// visible nodes and block ids its region needs. The per-anchor sets
    /// are then unioned — set union is order-insensitive and the pruned
    /// document is emitted in document order from the union, so the output
    /// is byte-identical to the serial pass.
    fn assemble(&self, anchors: &[Interval]) -> Result<(String, Vec<Arc<SealedBlock>>), CoreError> {
        if anchors.is_empty() {
            return Ok((String::new(), Vec::new()));
        }
        let regions = crate::pool::parallel_map(self.threads, anchors, |a| {
            let mut include: HashSet<NodeId> = HashSet::new();
            let mut block_ids: BTreeSet<u32> = BTreeSet::new();
            if let Some(&v) = self.interval_to_visible.get(a) {
                // Visible anchor: chain + full subtree + blocks under it.
                for anc in self.visible.ancestors(v) {
                    include.insert(anc);
                }
                for d in self.visible.descendants(v) {
                    include.insert(d);
                    if self.visible.element_name(d) == Some(BLOCK_MARKER_TAG) {
                        if let Some(b) = self.marker_block_id(d) {
                            block_ids.insert(b);
                        }
                    }
                }
            } else if let Some(b) = self.metadata.block_table.covering_block(a) {
                // Anchor inside a block: chain to the marker + the block.
                block_ids.insert(b);
                if let Some(rep) = self.metadata.block_table.representative(b) {
                    if let Some(&marker) = self.interval_to_visible.get(&rep) {
                        for d in self.visible.descendants(marker) {
                            include.insert(d);
                        }
                        for anc in self.visible.ancestors(marker) {
                            include.insert(anc);
                        }
                    }
                }
            }
            (include, block_ids)
        });
        let mut include: HashSet<NodeId> = HashSet::new();
        let mut block_ids: BTreeSet<u32> = BTreeSet::new();
        for (inc, ids) in regions {
            include.extend(inc);
            block_ids.extend(ids);
        }

        let pruned = self.clone_filtered(&include);
        let mut blocks = Vec::with_capacity(block_ids.len());
        for b in block_ids {
            if !self.block_live(b) {
                continue;
            }
            if let Some(block) = self.blocks.get(b)? {
                blocks.push(block);
            }
        }
        Ok((pruned.to_xml(), blocks))
    }

    fn marker_block_id(&self, marker: NodeId) -> Option<u32> {
        self.visible
            .node(marker)
            .attrs()
            .iter()
            .find_map(|&a| match self.visible.node(a).kind() {
                exq_xml::NodeKind::Attribute(name, v)
                    if self.visible.tag_name(*name) == crate::encrypt::BLOCK_ID_ATTR =>
                {
                    v.parse().ok()
                }
                _ => None,
            })
    }

    /// Clones the subset of the visible document induced by `include`.
    /// The include set is ancestor-closed by construction (chains are always
    /// added with their targets), so membership alone decides emission.
    fn clone_filtered(&self, include: &HashSet<NodeId>) -> Document {
        let mut out = Document::new();
        if let Some(root) = self.visible.root() {
            if include.contains(&root) {
                self.clone_filtered_rec(root, None, include, &mut out);
            }
        }
        out
    }

    fn clone_filtered_rec(
        &self,
        n: NodeId,
        parent: Option<NodeId>,
        include: &HashSet<NodeId>,
        out: &mut Document,
    ) {
        use exq_xml::NodeKind;
        match self.visible.node(n).kind() {
            NodeKind::Element(t) => {
                let name = self.visible.tag_name(*t).to_owned();
                let el = out.add_element(parent, &name);
                for &a in self.visible.node(n).attrs() {
                    // Attributes ride along with any included element.
                    if include.contains(&n) || include.contains(&a) {
                        if let NodeKind::Attribute(at, v) = self.visible.node(a).kind() {
                            let an = self.visible.tag_name(*at).to_owned();
                            out.add_attr(el, &an, v);
                        }
                    }
                }
                for &c in self.visible.node(n).children() {
                    if include.contains(&c) {
                        self.clone_filtered_rec(c, Some(el), include, out);
                    }
                }
            }
            NodeKind::Text(v) => {
                if let Some(p) = parent {
                    out.add_text(p, v);
                }
            }
            NodeKind::Attribute(..) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::SecurityConstraint;
    use crate::scheme::{EncryptionScheme, SchemeKind};
    use crate::wire::{SAxis, SStep};
    use exq_crypto::KeyChain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(kind: SchemeKind) -> (Server, crate::encrypt::ClientCryptoState) {
        let doc = Document::parse(
            r#"<hospital><patient><pname>Betty</pname><SSN>763895</SSN></patient>
               <patient><pname>Matt</pname><SSN>276543</SSN></patient></hospital>"#,
        )
        .unwrap();
        let cs = vec![SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap()];
        let scheme = EncryptionScheme::build(&doc, &cs, kind).unwrap();
        let keys = KeyChain::from_seed(3);
        let mut rng = StdRng::seed_from_u64(3);
        let out = crate::encrypt::encrypt_database(&doc, &scheme, &keys, &mut rng).unwrap();
        (Server::new(&out), out.client_state)
    }

    fn step(axis: SAxis, tag: &str) -> SStep {
        SStep {
            axis,
            tags: vec![tag.to_owned()],
            preds: Vec::new(),
        }
    }

    #[test]
    fn locate_finds_plain_tags() {
        let (s, _) = server(SchemeKind::Opt);
        let q = ServerQuery {
            steps: vec![step(SAxis::Descendant, "patient")],
            anchor: 0,
        };
        assert_eq!(s.locate(&q).len(), 2);
        // Unknown tag matches nothing.
        let q = ServerQuery {
            steps: vec![step(SAxis::Descendant, "ghost")],
            anchor: 0,
        };
        assert!(s.locate(&q).is_empty());
    }

    #[test]
    fn locate_child_chain() {
        let (s, _) = server(SchemeKind::Opt);
        let q = ServerQuery {
            steps: vec![
                step(SAxis::Child, "hospital"),
                step(SAxis::Child, "patient"),
            ],
            anchor: 1,
        };
        assert_eq!(s.locate(&q).len(), 2);
        // Wrong root tag kills the chain.
        let q = ServerQuery {
            steps: vec![step(SAxis::Child, "clinic"), step(SAxis::Child, "patient")],
            anchor: 1,
        };
        assert!(s.locate(&q).is_empty());
    }

    #[test]
    fn wildcard_step_uses_all_intervals() {
        let (s, _) = server(SchemeKind::Opt);
        let q = ServerQuery {
            steps: vec![SStep {
                axis: SAxis::Descendant,
                tags: Vec::new(),
                preds: Vec::new(),
            }],
            anchor: 0,
        };
        // Every table interval (plain + encrypted tags) is a candidate.
        assert_eq!(
            s.locate(&q).len(),
            s.metadata().dsi_table.all_intervals().len()
        );
    }

    #[test]
    fn insertion_slot_requires_visible_parent() {
        let (s, state) = server(SchemeKind::Opt);
        // A visible patient works.
        let q = ServerQuery {
            steps: vec![step(SAxis::Descendant, "patient")],
            anchor: 0,
        };
        let parent = s.locate(&q)[0];
        let slot = s.insertion_slot(parent).unwrap();
        assert!(slot.gap_lo < slot.gap_hi);
        assert_eq!(slot.next_block_id as usize, s.block_count());
        // An interval inside a block has no visible node.
        let cipher = state.keys.tag_cipher();
        let enc_tag = cipher.encrypt("pname");
        let hidden = s.metadata().dsi_table.lookup(&enc_tag)[0];
        assert!(s.insertion_slot(hidden).is_err());
    }

    #[test]
    fn answer_naive_ships_everything() {
        let (s, _) = server(SchemeKind::Opt);
        let resp = s.answer_naive().unwrap();
        assert_eq!(resp.blocks.len(), s.block_count());
        assert_eq!(resp.pruned_xml, s.visible_xml());
    }

    #[test]
    fn empty_query_degenerates_to_naive() {
        let (s, _) = server(SchemeKind::Opt);
        let resp = s
            .answer(&ServerQuery {
                steps: Vec::new(),
                anchor: 0,
            })
            .unwrap();
        assert_eq!(resp.blocks.len(), s.block_count());
    }
}

#[cfg(test)]
mod explain_tests {
    use super::tests_support::*;
    use super::*;
    use crate::wire::SAxis;

    #[test]
    fn explain_reports_pruning() {
        let (s, _) = build_server(crate::scheme::SchemeKind::Opt);
        let q = ServerQuery {
            steps: vec![
                mk_step(SAxis::Child, "hospital"),
                mk_step(SAxis::Child, "patient"),
            ],
            anchor: 1,
        };
        let r = s.explain(&q);
        assert_eq!(r.steps.len(), 2);
        assert_eq!(r.anchor, 1);
        assert_eq!(r.anchors, 2);
        assert!(r.steps[0].candidates >= r.steps[0].survivors);
    }

    #[test]
    fn explain_empty_query() {
        let (s, _) = build_server(crate::scheme::SchemeKind::Opt);
        let r = s.explain(&ServerQuery {
            steps: Vec::new(),
            anchor: 0,
        });
        assert!(r.steps.is_empty());
        assert_eq!(r.anchors, 0);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::constraints::SecurityConstraint;
    use crate::scheme::{EncryptionScheme, SchemeKind};
    use crate::wire::SAxis;
    use exq_crypto::KeyChain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn build_server(kind: SchemeKind) -> (Server, crate::encrypt::ClientCryptoState) {
        let doc = Document::parse(
            r#"<hospital><patient><pname>Betty</pname><SSN>763895</SSN></patient>
               <patient><pname>Matt</pname><SSN>276543</SSN></patient></hospital>"#,
        )
        .unwrap();
        let cs = vec![SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap()];
        let scheme = EncryptionScheme::build(&doc, &cs, kind).unwrap();
        let keys = KeyChain::from_seed(3);
        let mut rng = StdRng::seed_from_u64(3);
        let out = crate::encrypt::encrypt_database(&doc, &scheme, &keys, &mut rng).unwrap();
        (Server::new(&out), out.client_state)
    }

    pub(crate) fn mk_step(axis: SAxis, tag: &str) -> crate::wire::SStep {
        crate::wire::SStep {
            axis,
            tags: vec![tag.to_owned()],
            preds: Vec::new(),
        }
    }
}
