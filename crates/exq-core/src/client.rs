//! The client: query translation, decryption, and post-processing
//! (§6.1, §6.4).
//!
//! Translation replaces tags with their server-visible forms (Vernam
//! ciphertext for encrypted tags, plaintext otherwise — a tag occurring both
//! inside and outside blocks contributes both forms) and value predicates
//! with OPESS ciphertext ranges per Figure 7(a). Queries using axes the
//! server cannot evaluate over intervals (`parent`, `following-sibling`,
//! explicit `self` steps) fall back to the naive method transparently.
//!
//! Post-processing reconstructs a partial document from the server's pruned
//! response — decrypting blocks, splicing them over their markers, removing
//! decoys — and evaluates the *post query* (the original query with
//! predicates above the anchor stripped; those were verified exactly on the
//! server) to obtain the final answer, which equals the answer on the
//! plaintext database.

use crate::encrypt::{ClientCryptoState, BLOCK_ID_ATTR, BLOCK_MARKER_TAG, DECOY_TAG};
use crate::error::CoreError;
use crate::server::Server;
use crate::wire::{SAxis, SPred, SStep, ServerQuery, ServerResponse};
use exq_crypto::{open_block, RangeOp};
use exq_xml::{Document, NodeId};
use exq_xpath::{eval_document, Axis, CmpOp, Literal, NodeTest, Path, Predicate};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Synthetic root used when several root-level blocks must splice into one
/// reconstruction (a [`Document`] holds exactly one root element).
const SPLICE_ROOT_TAG: &str = "_exq_splice";

/// The data owner's query-side state.
#[derive(Debug, Clone)]
pub struct Client {
    state: ClientCryptoState,
    /// Worker threads for block decryption/parsing (resolved; >= 1).
    threads: usize,
}

/// A translated query plus what the client needs for post-processing.
#[derive(Debug, Clone)]
pub struct TranslatedQuery {
    /// What goes to the server, or `None` when the query needs the naive
    /// fallback (unsupported server axis).
    pub server_query: Option<ServerQuery>,
    /// The query the client re-runs on the reconstructed document.
    pub post_query: Path,
    /// The original query in full (used when the whole database is shipped,
    /// e.g. the naive baseline).
    pub full_query: Path,
    /// Time spent translating (§7.2's client translation time).
    pub translate_time: Duration,
}

/// The client-side result of one query round trip.
#[derive(Debug, Clone)]
pub struct PostProcessed {
    /// Serialized XML of each result node.
    pub results: Vec<String>,
    pub decrypt_time: Duration,
    pub post_process_time: Duration,
    pub blocks_decrypted: usize,
}

impl Client {
    pub fn new(state: ClientCryptoState) -> Client {
        Client {
            state,
            threads: crate::pool::default_threads(),
        }
    }

    /// Sets the decrypt/parse worker count (1 = strictly serial). Builder
    /// form; see also [`set_threads`](Client::set_threads).
    pub fn with_threads(mut self, threads: usize) -> Client {
        self.set_threads(threads);
        self
    }

    /// Sets the decrypt/parse worker count; `0` means auto (the
    /// `EXQ_THREADS` / available-parallelism resolution).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = crate::pool::resolve_threads(threads);
    }

    /// The resolved decrypt/parse worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn state(&self) -> &ClientCryptoState {
        &self.state
    }

    /// A stable 64-bit fingerprint of this client's master key (FNV-1a over
    /// the key bytes). Recorded per tenant in the multi-db registry and
    /// manifest so operators can tell which key a hosted database expects
    /// without ever storing the key server-side.
    pub fn key_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.state.keys.master_key() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub(crate) fn state_mut(&mut self) -> &mut ClientCryptoState {
        &mut self.state
    }

    /// Translates an XPath string (§6.1).
    pub fn translate(&self, query: &str) -> Result<TranslatedQuery, CoreError> {
        let start = Instant::now();
        let path = Path::parse(query).map_err(|e| CoreError::Query(e.to_string()))?;
        let server_query = self.translate_path(&path);
        // The client re-runs the FULL query on the reconstruction: the
        // server ships predicate witnesses for steps above the anchor, so
        // every predicate is re-checkable exactly (see `translate_path`).
        let post_query = path.clone();
        Ok(TranslatedQuery {
            server_query,
            post_query,
            full_query: path,
            translate_time: start.elapsed(),
        })
    }

    /// Executes the full round trip over a transport. The client never
    /// touches a `Server` directly: whether the link is [`InProcess`] or
    /// TCP, requests and responses travel as encoded frames.
    ///
    /// [`InProcess`]: crate::transport::InProcess
    pub fn run(
        &self,
        transport: &mut dyn crate::transport::Transport,
        query: &str,
    ) -> Result<(TranslatedQuery, ServerResponse, PostProcessed), CoreError> {
        let tq = self.translate(query)?;
        let resp = match &tq.server_query {
            Some(sq) => transport.send_query(sq)?,
            None => transport.send_naive()?,
        };
        let post = self.post_process(&tq.post_query, &resp)?;
        Ok((tq, resp, post))
    }

    /// Decrypts and parses every shipped block, fanning out across the
    /// configured worker threads. Results are keyed by block id; errors
    /// surface in block order, exactly as the serial loop reported them.
    fn decrypt_blocks(
        &self,
        blocks: &[std::sync::Arc<exq_crypto::SealedBlock>],
    ) -> Result<HashMap<u32, Document>, CoreError> {
        let key = self.state.keys.block_key();
        let opened = crate::pool::parallel_map(
            self.threads,
            blocks,
            |b| -> Result<(u32, Document), CoreError> {
                let bytes =
                    open_block(&key, b.as_ref()).map_err(|e| CoreError::Block(e.to_string()))?;
                let xml = String::from_utf8(bytes)
                    .map_err(|e| CoreError::Block(format!("block not UTF-8: {e}")))?;
                let doc = Document::parse(&xml)
                    .map_err(|e| CoreError::Block(format!("block not XML: {e}")))?;
                Ok((b.id, doc))
            },
        );
        let mut decrypted: HashMap<u32, Document> = HashMap::with_capacity(blocks.len());
        for entry in opened {
            let (id, doc) = entry?;
            decrypted.insert(id, doc);
        }
        Ok(decrypted)
    }

    /// Decrypts, reconstructs, and evaluates the post query (§6.4).
    pub fn post_process(
        &self,
        post_query: &Path,
        resp: &ServerResponse,
    ) -> Result<PostProcessed, CoreError> {
        let t0 = Instant::now();
        let decrypted = self.decrypt_blocks(&resp.blocks)?;
        let decrypt_time = t0.elapsed();

        let t1 = Instant::now();
        let reconstructed = self.reconstruct(&resp.pruned_xml, &decrypted)?;
        let results = match &reconstructed {
            None => Vec::new(),
            Some(doc) => eval_document(doc, post_query)
                .into_iter()
                .map(|n| render_result(doc, n))
                .collect(),
        };
        Ok(PostProcessed {
            results,
            decrypt_time,
            post_process_time: t1.elapsed(),
            blocks_decrypted: resp.blocks.len(),
        })
    }

    /// Reconstructs the complete plaintext database from the server — the
    /// owner's data-recovery path (decrypt everything, splice, strip
    /// decoys). Returns `None` only for an empty hosted database.
    pub fn export(&self, server: &Server) -> Result<Option<Document>, CoreError> {
        let resp = server.answer_naive()?;
        let decrypted = self.decrypt_blocks(&resp.blocks)?;
        self.reconstruct(&resp.pruned_xml, &decrypted)
    }

    /// Splices decrypted blocks over their markers and removes decoys.
    ///
    /// An empty `pruned_xml` with shipped blocks is the fully-encrypted-root
    /// case: the server has no visible context to send, but the blocks are
    /// the answer — they splice directly at the root level (ascending block
    /// id, matching document order) rather than being dropped. `None` is
    /// returned only when *nothing* came back (an empty hosted database).
    fn reconstruct(
        &self,
        pruned_xml: &str,
        decrypted: &HashMap<u32, Document>,
    ) -> Result<Option<Document>, CoreError> {
        let mut out = Document::new();
        if pruned_xml.is_empty() {
            if decrypted.is_empty() {
                return Ok(None);
            }
            let mut ids: Vec<u32> = decrypted.keys().copied().collect();
            ids.sort_unstable();
            // One block: its root becomes the document root (the common
            // fully-encrypted-root shape). Several blocks cannot share the
            // root slot, so they splice under a synthetic wrapper element;
            // descendant-axis post-queries see through it unchanged.
            let parent = if ids.len() > 1 {
                Some(out.add_element(None, SPLICE_ROOT_TAG))
            } else {
                None
            };
            for id in ids {
                let block_doc = &decrypted[&id];
                if let Some(broot) = block_doc.root() {
                    block_doc.clone_subtree_into(broot, &mut out, parent);
                }
            }
        } else {
            let pruned =
                Document::parse(pruned_xml).map_err(|e| CoreError::Response(e.to_string()))?;
            let root = pruned.root().ok_or(CoreError::EmptyDocument)?;
            splice(&pruned, root, None, decrypted, &mut out)?;
        }
        // Remove decoys anywhere in the reconstruction.
        let decoys: Vec<NodeId> = out.elements_by_tag(DECOY_TAG).into_iter().collect();
        for d in decoys {
            out.detach(d);
        }
        Ok(Some(out))
    }

    /// Translates a path into a server pattern; `None` on unsupported axes.
    ///
    /// The **anchor** is the highest (closest-to-root) step whose predicate
    /// set the server can only over-approximate — encrypted value predicates
    /// are exact only at block granularity, and unsupported predicates are
    /// dropped server-side entirely. The server ships each anchor match's
    /// whole region, plus one witness region per positive predicate above
    /// the anchor, so the client's re-run of the full query on the
    /// reconstruction is exact: positive predicates are monotone (holding
    /// on the shipped subset implies holding on `D`), and non-monotone
    /// predicates (`not`, `!=`, positional) always sit at or below the
    /// anchor, whose region is complete. Predicates that look *upward*
    /// (parent / following-sibling inside a predicate) cannot be re-checked
    /// on a pruned response at all; those queries fall back to naive.
    fn translate_path(&self, path: &Path) -> Option<ServerQuery> {
        // Upward-looking predicates anywhere force the naive path.
        if path
            .steps
            .iter()
            .any(|s| s.predicates.iter().any(pred_looks_upward))
        {
            return None;
        }
        let mut steps = Vec::with_capacity(path.steps.len());
        let mut anchor_cap = usize::MAX;
        for (i, step) in path.steps.iter().enumerate() {
            // A trailing text() step is evaluated client-side only.
            if step.test == NodeTest::Text && i + 1 == path.steps.len() {
                break;
            }
            let axis = match step.axis {
                Axis::Child => SAxis::Child,
                Axis::Descendant => SAxis::Descendant,
                Axis::DescendantOrSelf => SAxis::DescendantOrSelf,
                Axis::Attribute => SAxis::Attribute,
                Axis::SelfAxis | Axis::Parent | Axis::FollowingSibling => return None,
            };
            let tags = self.translate_test(&step.test, axis)?;
            let mut preds = Vec::with_capacity(step.predicates.len());
            for p in &step.predicates {
                match self.translate_pred(p) {
                    Some(sp) => {
                        if matches!(&sp, SPred::Value { range: Some(_), .. }) {
                            anchor_cap = anchor_cap.min(i);
                        }
                        preds.push(sp);
                    }
                    // Unsupported predicate: server over-approximates,
                    // client must re-verify from this step down.
                    None => anchor_cap = anchor_cap.min(i),
                }
            }
            steps.push(SStep { axis, tags, preds });
        }
        if steps.is_empty() {
            return None;
        }
        let anchor = (steps.len() - 1).min(anchor_cap);
        Some(ServerQuery { steps, anchor })
    }

    /// The DSI-table keys for a node test (possibly both plain + encrypted).
    fn translate_test(&self, test: &NodeTest, axis: SAxis) -> Option<Vec<String>> {
        match test {
            NodeTest::Wildcard => Some(Vec::new()),
            NodeTest::Text => None,
            NodeTest::Name(name) => {
                let key = match axis {
                    SAxis::Attribute => format!("@{name}"),
                    _ => name.clone(),
                };
                let mut tags = Vec::new();
                if self.state.plain_tags.contains(&key) {
                    tags.push(key.clone());
                }
                if self.state.encrypted_tags.contains(&key) {
                    tags.push(self.state.keys.tag_cipher().encrypt(&key));
                }
                if tags.is_empty() {
                    // Unknown tag: send the plaintext form; it will match
                    // nothing, which is the correct (empty) answer.
                    tags.push(key);
                }
                Some(tags)
            }
        }
    }

    fn translate_pred(&self, pred: &Predicate) -> Option<SPred> {
        match pred {
            // Positional and boolean predicates are evaluated client-side
            // only: returning None makes the server over-approximate and
            // caps the anchor at this step, so the client re-checks exactly.
            Predicate::Position(_)
            | Predicate::And(..)
            | Predicate::Or(..)
            | Predicate::Not(..) => None,
            // Substring predicates have no encrypted-domain evaluation
            // (OPESS preserves order, not containment): same client-side
            // treatment as booleans.
            Predicate::Contains(..) | Predicate::StartsWith(..) => None,
            Predicate::Exists(path) => {
                let steps = self.translate_relative(path)?;
                Some(SPred::Exists(steps))
            }
            Predicate::Compare(path, op, lit) => {
                let steps = self.translate_relative(path)?;
                // The predicate's target attribute name.
                let attr_key = attr_key_of(path)?;
                let enc = self.state.opess.get(&attr_key).and_then(|attr| {
                    let v = attr.codec.encode_query(&lit.as_text())?;
                    let range = attr.plan.translate(to_range_op(*op), v);
                    Some((self.state.keys.tag_cipher().encrypt(&attr_key), range))
                });
                let plain = self
                    .state
                    .plain_tags
                    .contains(&attr_key)
                    .then(|| (*op, lit.clone()));
                if enc.is_none() && plain.is_none() {
                    // Attribute unknown anywhere: predicate can never hold.
                    // Encode as an impossible plain comparison.
                    return Some(SPred::Value {
                        path: steps,
                        range: None,
                        plain: Some((CmpOp::Eq, Literal::Str("\u{0}unsatisfiable".into()))),
                    });
                }
                Some(SPred::Value {
                    path: steps,
                    range: enc,
                    plain,
                })
            }
        }
    }

    fn translate_relative(&self, path: &Path) -> Option<Vec<SStep>> {
        let mut out = Vec::with_capacity(path.steps.len());
        for step in &path.steps {
            let axis = match step.axis {
                Axis::Child => SAxis::Child,
                Axis::Descendant => SAxis::Descendant,
                Axis::DescendantOrSelf => SAxis::DescendantOrSelf,
                Axis::Attribute => SAxis::Attribute,
                _ => return None,
            };
            if step.test == NodeTest::Text {
                // Value predicates on text() compare the parent's value:
                // stop the structural path here.
                break;
            }
            let tags = self.translate_test(&step.test, axis)?;
            let mut preds = Vec::new();
            for p in &step.predicates {
                preds.push(self.translate_pred(p)?);
            }
            out.push(SStep { axis, tags, preds });
        }
        Some(out)
    }
}

/// The attribute name a comparison predicate targets: `@name` for attribute
/// steps, the final element tag otherwise (self-comparisons have no name).
fn attr_key_of(path: &Path) -> Option<String> {
    let last = path.steps.last()?;
    match (&last.axis, &last.test) {
        (Axis::Attribute, NodeTest::Name(n)) => Some(format!("@{n}")),
        (_, NodeTest::Name(n)) => Some(n.clone()),
        (_, NodeTest::Text) => {
            // [x/text() = v] targets x.
            let prev = path.steps.get(path.steps.len().checked_sub(2)?)?;
            match &prev.test {
                NodeTest::Name(n) => Some(n.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

fn to_range_op(op: CmpOp) -> RangeOp {
    match op {
        CmpOp::Eq => RangeOp::Eq,
        CmpOp::Ne => RangeOp::Ne,
        CmpOp::Lt => RangeOp::Lt,
        CmpOp::Le => RangeOp::Le,
        CmpOp::Gt => RangeOp::Gt,
        CmpOp::Ge => RangeOp::Ge,
    }
}

/// Recursively copies the pruned doc, replacing block markers with their
/// decrypted contents.
fn splice(
    pruned: &Document,
    n: NodeId,
    parent: Option<NodeId>,
    decrypted: &HashMap<u32, Document>,
    out: &mut Document,
) -> Result<(), CoreError> {
    use exq_xml::NodeKind;
    if pruned.element_name(n) == Some(BLOCK_MARKER_TAG) {
        let id: u32 = pruned
            .node(n)
            .attrs()
            .iter()
            .find_map(|&a| match pruned.node(a).kind() {
                NodeKind::Attribute(name, v) if pruned.tag_name(*name) == BLOCK_ID_ATTR => {
                    v.parse().ok()
                }
                _ => None,
            })
            .ok_or_else(|| CoreError::Response("marker without id".into()))?;
        if let Some(block_doc) = decrypted.get(&id) {
            let broot = block_doc
                .root()
                .ok_or_else(|| CoreError::Response("empty block".into()))?;
            block_doc.clone_subtree_into(broot, out, parent);
        }
        // Markers whose blocks were not shipped simply vanish: the anchor
        // logic guarantees the client never needs them.
        return Ok(());
    }
    match pruned.node(n).kind() {
        NodeKind::Element(t) => {
            let name = pruned.tag_name(*t).to_owned();
            let el = out.add_element(parent, &name);
            for &a in pruned.node(n).attrs() {
                if let NodeKind::Attribute(at, v) = pruned.node(a).kind() {
                    let an = pruned.tag_name(*at).to_owned();
                    out.add_attr(el, &an, v);
                }
            }
            for &c in pruned.node(n).children() {
                splice(pruned, c, Some(el), decrypted, out)?;
            }
        }
        NodeKind::Text(v) => {
            if let Some(p) = parent {
                out.add_text(p, v);
            }
        }
        NodeKind::Attribute(..) => {}
    }
    Ok(())
}

/// Does a predicate (recursively) contain a path step that looks upward or
/// sideways (parent / following-sibling)? Self steps are fine: they stay on
/// the node. Such predicates cannot be re-verified on a pruned response.
fn pred_looks_upward(pred: &Predicate) -> bool {
    fn path_upward(p: &Path) -> bool {
        p.steps.iter().any(|s| {
            matches!(s.axis, Axis::Parent | Axis::FollowingSibling)
                || s.predicates.iter().any(pred_looks_upward)
        })
    }
    match pred {
        Predicate::Exists(p) => path_upward(p),
        Predicate::Compare(p, _, _) => path_upward(p),
        Predicate::Contains(p, _) | Predicate::StartsWith(p, _) => path_upward(p),
        Predicate::Position(_) => false,
        Predicate::And(a, b) | Predicate::Or(a, b) => pred_looks_upward(a) || pred_looks_upward(b),
        Predicate::Not(a) => pred_looks_upward(a),
    }
}

/// Renders one result node: elements as XML, attributes/text as their value.
fn render_result(doc: &Document, n: NodeId) -> String {
    use exq_xml::NodeKind;
    match doc.node(n).kind() {
        NodeKind::Element(_) => doc.node_to_xml(n),
        NodeKind::Attribute(_, v) => v.clone(),
        NodeKind::Text(t) => t.clone(),
    }
}
