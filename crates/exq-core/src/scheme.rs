//! Encryption schemes (§3.1, §4.1, §4.2).
//!
//! An encryption scheme identifies the subtree roots to encrypt as blocks,
//! and whether each block carries a decoy. Schemes are built from security
//! constraints:
//!
//! * node-type SCs contribute their bound nodes unconditionally;
//! * association SCs contribute the bound nodes of the endpoint paths chosen
//!   by a vertex-cover solver ([`SchemeKind`] picks which one).
//!
//! The four experimental variants of §7.1 are all here: `Opt` (exact
//! minimum cover), `App` (Clarkson's greedy), `Sub` (parents of the `Opt`
//! targets), and `Top` (the whole document as one block).

use crate::constraints::SecurityConstraint;
use crate::cover::{solve_clarkson, solve_exact, solve_matching, ConstraintGraph};
use crate::error::CoreError;
use exq_xml::{Document, NodeId, NodeKind};
use exq_xpath::eval_document;
use std::collections::BTreeSet;

/// Which scheme-construction strategy to use (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// The whole document encrypted as one block.
    Top,
    /// Parents of the `Opt` scheme's targets.
    Sub,
    /// Endpoints chosen by Clarkson's approximation algorithm.
    App,
    /// Endpoints chosen by the exact minimum-weight vertex cover.
    Opt,
    /// Endpoints chosen by the maximal-matching 2-approximation, which
    /// takes *both* endpoints of each matched edge. Not one of the paper's
    /// four variants; kept as an over-encrypting ablation because Clarkson's
    /// algorithm often finds the exact optimum on Figure 8-sized graphs.
    Match,
}

impl SchemeKind {
    /// The paper's four §7.1 variants.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Top,
        SchemeKind::Sub,
        SchemeKind::App,
        SchemeKind::Opt,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Top => "top",
            SchemeKind::Sub => "sub",
            SchemeKind::App => "app",
            SchemeKind::Opt => "opt",
            SchemeKind::Match => "match",
        }
    }
}

/// One encryption target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncryptionTarget {
    /// Root of the subtree to encrypt (always an element).
    pub node: NodeId,
    /// Attach a random decoy before encryption (§4.1: every encrypted leaf
    /// element gets one so equal plaintexts seal to distinct ciphertexts).
    pub decoy: bool,
}

/// A concrete encryption scheme for one document.
#[derive(Debug, Clone, Default)]
pub struct EncryptionScheme {
    pub kind_name: String,
    pub targets: Vec<EncryptionTarget>,
    /// The *rules* behind the targets: the absolute paths whose bindings
    /// are encrypted (node-type SC paths + chosen cover endpoints). Kept so
    /// the client can apply the same policy to records inserted later.
    pub paths: Vec<exq_xpath::Path>,
    /// `Sub` scheme: encrypt the parents of the paths' bindings instead.
    pub lift_to_parent: bool,
}

impl EncryptionScheme {
    /// Builds the scheme of the given kind for `doc` under `constraints`.
    pub fn build(
        doc: &Document,
        constraints: &[SecurityConstraint],
        kind: SchemeKind,
    ) -> Result<EncryptionScheme, CoreError> {
        let root = doc.root().ok_or(CoreError::EmptyDocument)?;
        let (roots, paths, lift): (BTreeSet<NodeId>, Vec<exq_xpath::Path>, bool) = match kind {
            SchemeKind::Top => (
                [root].into(),
                vec![exq_xpath::Path::parse("/*").expect("static")],
                false,
            ),
            SchemeKind::Opt => {
                let (r, p) = cover_roots(doc, constraints, solve_exact);
                (r, p, false)
            }
            SchemeKind::App => {
                let (r, p) = cover_roots(doc, constraints, solve_clarkson);
                (r, p, false)
            }
            SchemeKind::Match => {
                let (r, p) = cover_roots(doc, constraints, solve_matching);
                (r, p, false)
            }
            SchemeKind::Sub => {
                let (opt, p) = cover_roots(doc, constraints, solve_exact);
                let lifted = opt
                    .into_iter()
                    .map(|n| doc.node(n).parent().unwrap_or(root))
                    .collect();
                (lifted, p, true)
            }
        };
        let roots = normalize(doc, roots);
        let targets = roots
            .into_iter()
            .map(|node| EncryptionTarget {
                node,
                decoy: is_leaf_element(doc, node),
            })
            .collect();
        Ok(EncryptionScheme {
            kind_name: kind.name().to_owned(),
            targets,
            paths,
            lift_to_parent: lift,
        })
    }

    /// The size |S| of the scheme (Definition 4.1): total nodes across all
    /// encryption blocks, counting one decoy node per decoy block.
    pub fn size(&self, doc: &Document) -> u64 {
        self.targets
            .iter()
            .map(|t| doc.subtree_size(t.node) as u64 + u64::from(t.decoy))
            .sum()
    }

    /// The encrypted subtree roots.
    pub fn roots(&self) -> Vec<NodeId> {
        self.targets.iter().map(|t| t.node).collect()
    }

    /// Checks that every SC is enforced by this scheme (Theorem 4.1 setup).
    pub fn enforces(&self, doc: &Document, constraints: &[SecurityConstraint]) -> bool {
        let roots = self.roots();
        constraints.iter().all(|sc| sc.is_enforced(doc, &roots))
    }
}

/// Association endpoints chosen by `solver`, plus node-type targets.
/// Returns the bound nodes and the governing paths.
fn cover_roots(
    doc: &Document,
    constraints: &[SecurityConstraint],
    solver: fn(&ConstraintGraph) -> Vec<usize>,
) -> (BTreeSet<NodeId>, Vec<exq_xpath::Path>) {
    let mut roots = BTreeSet::new();
    let mut paths = Vec::new();
    for sc in constraints {
        if let SecurityConstraint::NodeType(p) = sc {
            paths.push(p.clone());
        }
        for n in sc.node_targets(doc) {
            roots.insert(element_target(doc, n));
        }
    }
    let g = ConstraintGraph::build(doc, constraints);
    for v in solver(&g) {
        paths.push(g.vertices[v].path.clone());
        for n in eval_document(doc, &g.vertices[v].path) {
            roots.insert(element_target(doc, n));
        }
    }
    (roots, paths)
}

/// Encryption targets must be elements: attribute and text bindings are
/// lifted to their parent element.
fn element_target(doc: &Document, n: NodeId) -> NodeId {
    match doc.node(n).kind() {
        NodeKind::Element(_) => n,
        _ => doc
            .node(n)
            .parent()
            .expect("attribute/text nodes have parents"),
    }
}

/// Removes targets nested inside other targets (the outer block already
/// covers them).
fn normalize(doc: &Document, roots: BTreeSet<NodeId>) -> Vec<NodeId> {
    roots
        .iter()
        .copied()
        .filter(|&n| !doc.ancestors(n).iter().any(|a| roots.contains(a)))
        .collect()
}

/// True for elements whose element-children are none (their content is only
/// text/attributes) — the paper's "leaf element" that needs a decoy.
fn is_leaf_element(doc: &Document, n: NodeId) -> bool {
    doc.node(n)
        .children()
        .iter()
        .all(|&c| !doc.node(c).is_element())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            r#"<hospital>
                <patient><pname>Betty</pname><SSN>763895</SSN>
                  <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
                  <insurance><policy coverage="1000000">34221</policy></insurance></patient>
                <patient><pname>Matt</pname><SSN>276543</SSN>
                  <treat><disease>leukemia</disease><doctor>Brown</doctor></treat>
                  <insurance><policy coverage="5000">78543</policy></insurance></patient>
               </hospital>"#,
        )
        .unwrap()
    }

    fn constraints() -> Vec<SecurityConstraint> {
        [
            "//insurance",
            "//patient:(/pname, /SSN)",
            "//patient:(/pname, //disease)",
            "//treat:(/disease, /doctor)",
        ]
        .iter()
        .map(|s| SecurityConstraint::parse(s).unwrap())
        .collect()
    }

    #[test]
    fn top_scheme_is_whole_document() {
        let d = doc();
        let s = EncryptionScheme::build(&d, &constraints(), SchemeKind::Top).unwrap();
        assert_eq!(s.targets.len(), 1);
        assert_eq!(s.targets[0].node, d.root().unwrap());
        assert_eq!(s.size(&d), d.len() as u64);
        assert!(s.enforces(&d, &constraints()));
    }

    #[test]
    fn opt_scheme_enforces_all_constraints() {
        let d = doc();
        let cs = constraints();
        let s = EncryptionScheme::build(&d, &cs, SchemeKind::Opt).unwrap();
        assert!(s.enforces(&d, &cs), "opt scheme must enforce the SCs");
        // insurance elements must always be encrypted (node-type SC)
        let ins = d.elements_by_tag("insurance");
        let roots = s.roots();
        for i in ins {
            assert!(
                roots.contains(&i) || d.ancestors(i).iter().any(|a| roots.contains(a)),
                "insurance not protected"
            );
        }
    }

    #[test]
    fn app_scheme_enforces_and_is_at_most_twice_opt() {
        let d = doc();
        let cs = constraints();
        let opt = EncryptionScheme::build(&d, &cs, SchemeKind::Opt).unwrap();
        let app = EncryptionScheme::build(&d, &cs, SchemeKind::App).unwrap();
        assert!(app.enforces(&d, &cs));
        // Ratio guarantee transfers only loosely through node-type overlap;
        // at minimum the app scheme cannot be better than opt.
        assert!(app.size(&d) >= opt.size(&d));
    }

    #[test]
    fn sub_scheme_encrypts_parents() {
        let d = doc();
        let cs = constraints();
        let opt = EncryptionScheme::build(&d, &cs, SchemeKind::Opt).unwrap();
        let sub = EncryptionScheme::build(&d, &cs, SchemeKind::Sub).unwrap();
        assert!(sub.enforces(&d, &cs));
        // Every opt root must be inside some sub root's subtree.
        let sub_roots = sub.roots();
        for r in opt.roots() {
            let covered =
                sub_roots.contains(&r) || d.ancestors(r).iter().any(|a| sub_roots.contains(a));
            assert!(covered, "opt target escaped the sub scheme");
        }
        assert!(sub.size(&d) >= opt.size(&d));
    }

    #[test]
    fn scheme_size_ordering_matches_paper() {
        // §7.4: size(top) >= size(sub) >= size(app) >= size(opt) does not
        // hold in general for *scheme* size (top is the whole doc), but
        // opt <= app <= sub must hold here.
        let d = doc();
        let cs = constraints();
        let opt = EncryptionScheme::build(&d, &cs, SchemeKind::Opt)
            .unwrap()
            .size(&d);
        let app = EncryptionScheme::build(&d, &cs, SchemeKind::App)
            .unwrap()
            .size(&d);
        let sub = EncryptionScheme::build(&d, &cs, SchemeKind::Sub)
            .unwrap()
            .size(&d);
        assert!(opt <= app);
        assert!(app <= sub || opt <= sub);
    }

    #[test]
    fn nested_targets_normalized() {
        let d = doc();
        // Force nesting: protect both treat and disease.
        let cs = vec![
            SecurityConstraint::parse("//treat").unwrap(),
            SecurityConstraint::parse("//disease").unwrap(),
        ];
        let s = EncryptionScheme::build(&d, &cs, SchemeKind::Opt).unwrap();
        let roots = s.roots();
        for &r in &roots {
            assert!(
                !d.ancestors(r).iter().any(|a| roots.contains(a)),
                "nested encryption targets survived normalization"
            );
        }
        assert_eq!(roots.len(), d.elements_by_tag("treat").len());
    }

    #[test]
    fn decoys_on_leaf_elements_only() {
        let d = doc();
        let cs = constraints();
        let s = EncryptionScheme::build(&d, &cs, SchemeKind::Opt).unwrap();
        for t in &s.targets {
            let is_leaf = d
                .node(t.node)
                .children()
                .iter()
                .all(|&c| !d.node(c).is_element());
            assert_eq!(t.decoy, is_leaf);
        }
    }

    #[test]
    fn empty_document_rejected() {
        let d = Document::new();
        assert_eq!(
            EncryptionScheme::build(&d, &[], SchemeKind::Top).unwrap_err(),
            CoreError::EmptyDocument
        );
    }

    #[test]
    fn attribute_endpoints_lift_to_parent() {
        let d = doc();
        let cs = vec![SecurityConstraint::parse("//policy:(/@coverage, .)").unwrap()];
        let s = EncryptionScheme::build(&d, &cs, SchemeKind::Opt).unwrap();
        for t in &s.targets {
            assert!(d.node(t.node).is_element());
        }
        assert!(!s.targets.is_empty());
    }
}
