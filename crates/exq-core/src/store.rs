//! Out-of-core hosting: the glue between [`Server`] and the paged storage
//! engine in `exq-store`.
//!
//! An all-in-RAM server keeps every sealed block resident and persists by
//! rewriting one artifact file. A *paged* server keeps the metadata (DSI
//! table, block table, value indexes, visible document) resident — the
//! query planner probes them on every request — while the sealed block
//! payloads, the dominant bytes, live in an [`exq_store::PagedStore`] and
//! page in on demand through its buffer pool. Record ids follow
//! [`exq_index::paged`]: record 0 is the metadata image, `(1<<32)|b` is
//! block `b`, `(2<<32)|k` is posting list `k`.
//!
//! ## Mutations: log-then-apply
//!
//! `apply_insert` / `delete_where` on a paged server first append the
//! mutation's wire encoding to the WAL (fsync = commit point), then apply
//! it in memory; new blocks land in a small overlay map until the next
//! checkpoint folds them into pages. Replay on open re-applies the logged
//! mutations through the same code path, so a kill -9 at any moment either
//! recovers the mutation (it was acked) or cleanly drops a torn tail (it
//! was not).
//!
//! ## Checkpointing
//!
//! [`checkpoint_once`] snapshots the server under the read lock (queries
//! keep flowing), folds the metadata image, the posting lists, and the
//! overlay blocks into the page file copy-on-write, flips the superblock,
//! compacts the WAL, and finally drains the overlay under a brief write
//! lock. The dirty set is O(metadata + update): block payloads already on
//! pages are never rewritten. [`Checkpointer`] runs this on a background
//! thread off the serving path.

use crate::error::CoreError;
use crate::persist::{interval, read_interval, R, W};
use crate::server::Server;
use crate::telemetry::{self, Counter, Gauge};
use exq_crypto::SealedBlock;
use exq_index::paged::{
    block_record_id, encode_postings, load_postings, posting_record_id, REC_META,
};
use exq_index::{BTree, BlockTable, DsiIndexTable};
use exq_store::PagedStore;
use exq_xml::Document;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

pub use exq_store::{PoolStats, StoreFootprint, StoreOptions};

/// Magic of the paged metadata record (record id 0).
const META_MAGIC: &[u8; 6] = b"EXQPM1";

/// WAL record kind: an `InsertDelta` wire encoding.
pub(crate) const KIND_INSERT: u8 = 1;
/// WAL record kind: a `ServerQuery` wire encoding (delete-where).
pub(crate) const KIND_DELETE: u8 = 2;

impl From<exq_store::StoreError> for CoreError {
    fn from(e: exq_store::StoreError) -> CoreError {
        CoreError::Persist(format!("store: {e}"))
    }
}

// ------------------------------------------------------ engine observer --

/// Cached handles for the engine-level series the observer feeds, so a
/// storage event costs atomic adds, never a registry lookup.
struct EngineSeries {
    page_fault: Arc<telemetry::Histogram>,
    wal_fsync: Arc<telemetry::Histogram>,
    wal_replay: Arc<telemetry::Histogram>,
    checkpoint: Arc<telemetry::Histogram>,
    epoch_retries: Arc<Counter>,
    wal_compactions: Arc<Counter>,
    scrub_pages: Arc<Counter>,
    scrub_corrupt_pages: Arc<Counter>,
    /// Running eviction total, for sampled flight-recorder pressure events.
    evictions: AtomicU64,
}

fn engine_series() -> &'static EngineSeries {
    static SERIES: OnceLock<EngineSeries> = OnceLock::new();
    SERIES.get_or_init(|| EngineSeries {
        page_fault: telemetry::histogram("exq_store_page_fault_seconds"),
        wal_fsync: telemetry::histogram("exq_store_wal_fsync_seconds"),
        wal_replay: telemetry::histogram("exq_store_wal_replay_seconds"),
        checkpoint: telemetry::histogram("exq_store_checkpoint_seconds"),
        epoch_retries: telemetry::counter("exq_store_epoch_retries_total"),
        wal_compactions: telemetry::counter("exq_store_wal_compactions_total"),
        scrub_pages: telemetry::counter("exq_store_scrub_pages_total"),
        scrub_corrupt_pages: telemetry::counter("exq_store_scrub_corrupt_pages_total"),
        evictions: AtomicU64::new(0),
    })
}

/// The bridge installed into `exq-store`'s observer slot: every storage
/// event lands in the engine histograms, in the calling thread's active
/// [`telemetry::QueryProfile`] (hooks fire on the thread that did the
/// work, so attribution is exact — the background checkpointer has no
/// active profile and never pollutes a query's numbers), and — for the
/// operationally loud ones — in the flight recorder. Every method bails
/// on one relaxed load when telemetry is off, so the telemetry-off
/// configuration measures a true zero-instrumentation baseline.
struct CoreStoreObserver;

impl exq_store::StoreObserver for CoreStoreObserver {
    fn pool_hit(&self) {
        if telemetry::enabled() {
            telemetry::with_profile(|p| p.pool_hits += 1);
        }
    }

    fn pool_miss(&self) {
        if telemetry::enabled() {
            telemetry::with_profile(|p| p.pool_misses += 1);
        }
    }

    fn page_fault(&self, nanos: u64) {
        if telemetry::enabled() {
            engine_series().page_fault.observe(nanos);
            telemetry::with_profile(|p| p.pages_faulted += 1);
        }
    }

    fn eviction(&self) {
        if telemetry::enabled() {
            let total = engine_series().evictions.fetch_add(1, Ordering::Relaxed) + 1;
            telemetry::with_profile(|p| p.evictions += 1);
            crate::flight::evict_pressure(total);
        }
    }

    fn epoch_retry(&self) {
        if telemetry::enabled() {
            engine_series().epoch_retries.inc();
            telemetry::with_profile(|p| p.epoch_retries += 1);
        }
    }

    fn wal_fsync(&self, bytes: u64, nanos: u64) {
        if telemetry::enabled() {
            engine_series().wal_fsync.observe(nanos);
            telemetry::with_profile(|p| p.wal_bytes += bytes);
            if nanos > crate::flight::FSYNC_SLOW_NANOS {
                crate::flight::event(
                    crate::flight::Kind::WalFsyncSlow,
                    "",
                    bytes,
                    nanos / 1000,
                    0,
                );
            }
        }
    }

    fn wal_replay(&self, _records: u64, nanos: u64) {
        if telemetry::enabled() {
            engine_series().wal_replay.observe(nanos);
        }
    }

    fn wal_compaction(&self) {
        if telemetry::enabled() {
            engine_series().wal_compactions.inc();
        }
    }

    fn checkpoint(&self, _pages_folded: u64, nanos: u64) {
        if telemetry::enabled() {
            engine_series().checkpoint.observe(nanos);
        }
    }

    fn scrub(&self, scanned: u64, _corrupt_records: u64) {
        if telemetry::enabled() {
            engine_series().scrub_pages.add(scanned);
        }
    }

    fn scrub_corrupt(&self, _id: u64, pages: u64) {
        if telemetry::enabled() {
            engine_series().scrub_corrupt_pages.add(pages);
        }
    }
}

/// Installs [`CoreStoreObserver`] into `exq-store`. Idempotent (first
/// install wins, even against another observer in the same process);
/// called from every [`PagedDb`] construction so any paged database is
/// observed without callers opting in.
fn install_store_observer() {
    static OBS: CoreStoreObserver = CoreStoreObserver;
    let _ = exq_store::set_observer(&OBS);
}

/// What WAL replay did while opening a paged database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Logged mutations re-applied.
    pub replayed: usize,
    /// Logged mutations whose re-application failed (deterministic: the
    /// live call failed identically after its WAL append).
    pub failed: usize,
    /// True when a torn record tail was truncated from the log.
    pub dropped_torn_tail: bool,
}

/// The sealed-block side of a [`Server`]: either fully resident or backed
/// by a paged store with an overlay of not-yet-checkpointed blocks.
#[derive(Debug, Clone)]
pub(crate) enum BlockStore {
    /// Every block in RAM (the classic mode).
    Resident(Vec<Arc<SealedBlock>>),
    /// Blocks page in through `db`; `overlay` holds blocks inserted since
    /// the last checkpoint.
    Paged {
        db: Arc<PagedDb>,
        count: u32,
        payload_bytes: u64,
        overlay: HashMap<u32, Arc<SealedBlock>>,
    },
}

impl BlockStore {
    pub(crate) fn len(&self) -> usize {
        match self {
            BlockStore::Resident(v) => v.len(),
            BlockStore::Paged { count, .. } => *count as usize,
        }
    }

    /// Total stored bytes of every block (tombstoned included).
    pub(crate) fn payload_bytes(&self) -> u64 {
        match self {
            BlockStore::Resident(v) => v.iter().map(|b| b.stored_size() as u64).sum(),
            BlockStore::Paged { payload_bytes, .. } => *payload_bytes,
        }
    }

    pub(crate) fn get(&self, id: u32) -> Result<Option<Arc<SealedBlock>>, CoreError> {
        match self {
            BlockStore::Resident(v) => Ok(v.get(id as usize).cloned()),
            BlockStore::Paged {
                db, count, overlay, ..
            } => {
                if id >= *count {
                    return Ok(None);
                }
                if let Some(b) = overlay.get(&id) {
                    return Ok(Some(Arc::clone(b)));
                }
                db.load_block(id).map(Some)
            }
        }
    }

    pub(crate) fn push(&mut self, block: SealedBlock) {
        match self {
            BlockStore::Resident(v) => v.push(Arc::new(block)),
            BlockStore::Paged {
                count,
                payload_bytes,
                overlay,
                ..
            } => {
                let id = block.id;
                *payload_bytes += block.stored_size() as u64;
                overlay.insert(id, Arc::new(block));
                *count = (*count).max(id + 1);
            }
        }
    }

    /// Every block, in id order (pages the whole database in when paged).
    pub(crate) fn collect(&self) -> Result<Vec<Arc<SealedBlock>>, CoreError> {
        match self {
            BlockStore::Resident(v) => Ok(v.clone()),
            BlockStore::Paged { count, .. } => {
                let mut out = Vec::with_capacity(*count as usize);
                for id in 0..*count {
                    out.push(self.get(id)?.ok_or_else(|| {
                        CoreError::Persist(format!("block {id} missing from paged store"))
                    })?);
                }
                Ok(out)
            }
        }
    }
}

/// A paged database: the store plus its per-db telemetry series.
pub struct PagedDb {
    store: PagedStore,
    label: String,
    read_block_ns: &'static str,
    checkpoints: Arc<Counter>,
    pages_folded: Arc<Counter>,
    wal_compactions: Arc<Counter>,
    pool_hits: Arc<Gauge>,
    pool_misses: Arc<Gauge>,
    pool_evictions: Arc<Gauge>,
    resident_pages: Arc<Gauge>,
    disk_bytes: Arc<Gauge>,
    wal_depth: Arc<Gauge>,
    wal_bytes: Arc<Gauge>,
}

impl std::fmt::Debug for PagedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedDb")
            .field("label", &self.label)
            .field("dir", &self.store.dir())
            .finish_non_exhaustive()
    }
}

impl PagedDb {
    fn with_store(store: PagedStore, label: &str) -> Arc<PagedDb> {
        install_store_observer();
        let g = |name: &str| telemetry::gauge(&telemetry::db_series(name, label));
        let c = |name: &str| telemetry::counter(&telemetry::db_series(name, label));
        Arc::new(PagedDb {
            store,
            label: label.to_owned(),
            read_block_ns: "store.read_block",
            checkpoints: c("exq_store_checkpoints_total"),
            pages_folded: c("exq_store_checkpoint_pages_folded_total"),
            wal_compactions: c("exq_store_wal_compactions_total"),
            pool_hits: g("exq_store_pool_hits_total"),
            pool_misses: g("exq_store_pool_misses_total"),
            pool_evictions: g("exq_store_pool_evictions_total"),
            resident_pages: g("exq_store_resident_pages"),
            disk_bytes: g("exq_db_disk_bytes"),
            wal_depth: g("exq_store_wal_depth"),
            wal_bytes: g("exq_store_wal_bytes"),
        })
    }

    /// The pages directory a legacy single-file artifact migrates into:
    /// a sibling directory named `<file>.pages`.
    pub fn pages_dir(legacy_path: &Path) -> PathBuf {
        let mut os = legacy_path.as_os_str().to_owned();
        os.push(".pages");
        PathBuf::from(os)
    }

    /// True when `legacy_path` already has a paged sibling.
    pub fn is_paged(legacy_path: &Path) -> bool {
        PagedStore::exists(&Self::pages_dir(legacy_path))
    }

    /// Opens a database out-of-core. If the paged sibling of `path`
    /// exists it is authoritative (the WAL replays on top of the last
    /// checkpoint); otherwise the legacy single-file artifact at `path`
    /// loads byte-compatibly and migrates: a full checkpoint writes every
    /// record into a fresh paged store. The legacy file is left untouched.
    pub fn open_or_migrate(
        path: &Path,
        label: &str,
        opts: StoreOptions,
    ) -> Result<(Server, Arc<PagedDb>, ReplaySummary), CoreError> {
        let dir = Self::pages_dir(path);
        if PagedStore::exists(&dir) {
            return Self::open(&dir, label, opts);
        }
        let mut server = Server::load(path)?;
        let db = Self::create_from_server(&dir, label, opts, &server)?;
        server.attach_paged(Arc::clone(&db));
        db.publish_metrics();
        Ok((server, db, ReplaySummary::default()))
    }

    /// Creates a fresh paged store at `dir` holding `server`'s full state
    /// (metadata image, posting lists, every sealed block).
    pub(crate) fn create_from_server(
        dir: &Path,
        label: &str,
        opts: StoreOptions,
        server: &Server,
    ) -> Result<Arc<PagedDb>, CoreError> {
        Self::create_from_server_with(exq_store::os_vfs(), dir, label, opts, server)
    }

    /// [`create_from_server`](Self::create_from_server) against an
    /// explicit [`exq_store::Vfs`] (the crash-torture harness runs whole
    /// databases on a [`exq_store::FaultVfs`]).
    pub(crate) fn create_from_server_with(
        vfs: Arc<dyn exq_store::Vfs>,
        dir: &Path,
        label: &str,
        opts: StoreOptions,
        server: &Server,
    ) -> Result<Arc<PagedDb>, CoreError> {
        let store = PagedStore::create_with(vfs, dir, opts)?;
        let mut dirty: Vec<(u64, Option<Vec<u8>>)> = vec![(REC_META, Some(encode_meta(server)))];
        for (k, list) in sorted_postings(server).into_iter().enumerate() {
            dirty.push((posting_record_id(k as u32), Some(encode_postings(list))));
        }
        for b in server.collect_blocks()? {
            dirty.push((block_record_id(b.id), Some(encode_block_record(&b))));
        }
        store.checkpoint(&dirty, 0)?;
        Ok(Self::with_store(store, label))
    }

    /// Converts a live resident server in place: writes its state into a
    /// fresh paged store at `dir` and attaches it. Returns the store
    /// handle. Used by tests and tools that build a database in memory and
    /// then host it out-of-core.
    pub fn attach_new(
        server: &mut Server,
        dir: &Path,
        label: &str,
        opts: StoreOptions,
    ) -> Result<Arc<PagedDb>, CoreError> {
        Self::attach_new_with(server, exq_store::os_vfs(), dir, label, opts)
    }

    /// [`attach_new`](Self::attach_new) against an explicit
    /// [`exq_store::Vfs`].
    pub fn attach_new_with(
        server: &mut Server,
        vfs: Arc<dyn exq_store::Vfs>,
        dir: &Path,
        label: &str,
        opts: StoreOptions,
    ) -> Result<Arc<PagedDb>, CoreError> {
        let db = Self::create_from_server_with(vfs, dir, label, opts, server)?;
        server.attach_paged(Arc::clone(&db));
        db.publish_metrics();
        Ok(db)
    }

    /// Opens an existing paged store and rebuilds the server: metadata
    /// image + posting lists hydrate the resident structures, then the WAL
    /// replays mutations committed after the last checkpoint.
    pub fn open(
        dir: &Path,
        label: &str,
        opts: StoreOptions,
    ) -> Result<(Server, Arc<PagedDb>, ReplaySummary), CoreError> {
        Self::open_with(exq_store::os_vfs(), dir, label, opts)
    }

    /// [`open`](Self::open) against an explicit [`exq_store::Vfs`].
    pub fn open_with(
        vfs: Arc<dyn exq_store::Vfs>,
        dir: &Path,
        label: &str,
        opts: StoreOptions,
    ) -> Result<(Server, Arc<PagedDb>, ReplaySummary), CoreError> {
        let (store, replay) = PagedStore::open_with(vfs, dir, opts)?;
        let db = Self::with_store(store, label);
        let meta = db.store.get(REC_META)?;
        let mut server = decode_meta(&meta, &db)?;
        let mut summary = ReplaySummary {
            dropped_torn_tail: replay.dropped_torn_tail,
            ..ReplaySummary::default()
        };
        for rec in &replay.records {
            // Replay errors are deterministic mirrors of the live call's
            // outcome (the mutation was logged before it was applied), so
            // a failed record is counted, not fatal — the recovered state
            // matches the pre-crash state exactly.
            let ok = match rec.kind {
                KIND_INSERT => {
                    use crate::codec::WireCodec;
                    let delta = crate::update::InsertDelta::decode(&rec.payload)
                        .map_err(|e| CoreError::Persist(format!("WAL insert record: {e}")))?;
                    server.apply_insert_unlogged(&delta).is_ok()
                }
                KIND_DELETE => {
                    use crate::codec::WireCodec;
                    let q = crate::wire::ServerQuery::decode(&rec.payload)
                        .map_err(|e| CoreError::Persist(format!("WAL delete record: {e}")))?;
                    server.delete_where_unlogged(&q);
                    true
                }
                k => {
                    return Err(CoreError::Persist(format!(
                        "WAL record {} has unknown kind {k}",
                        rec.seq
                    )))
                }
            };
            if ok {
                summary.replayed += 1;
            } else {
                summary.failed += 1;
            }
        }
        db.publish_metrics();
        Ok((server, db, summary))
    }

    /// Reads one sealed block record, pinning its pages.
    pub(crate) fn load_block(&self, id: u32) -> Result<Arc<SealedBlock>, CoreError> {
        let t = Instant::now();
        let raw = self.store.get(block_record_id(id))?;
        let block = decode_block_record(id, &raw)?;
        telemetry::with_profile(|p| p.records_decoded += 1);
        telemetry::record_span(self.read_block_ns, t.elapsed());
        Ok(Arc::new(block))
    }

    /// Appends one mutation record to the WAL; `Ok` means fsynced.
    pub(crate) fn append_wal(&self, kind: u8, payload: &[u8]) -> Result<u64, CoreError> {
        let t = Instant::now();
        let seq = self.store.append_wal(kind, payload)?;
        telemetry::record_span("store.wal_append", t.elapsed());
        self.publish_metrics();
        Ok(seq)
    }

    /// Whether a block record is already durable in pages.
    pub(crate) fn block_checkpointed(&self, id: u32) -> bool {
        self.store.contains(block_record_id(id))
    }

    /// The store's on-disk / residency footprint.
    pub fn footprint(&self) -> StoreFootprint {
        self.store.footprint()
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.store.pool_stats()
    }

    /// The telemetry db label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Arms a one-shot crash injection point in the next checkpoint
    /// (see [`exq_store::crash`]). Test hook.
    #[doc(hidden)]
    pub fn inject_checkpoint_crash(&self, point: u8) {
        self.store.inject_checkpoint_crash(point);
    }

    /// Pushes the store's footprint and pool counters into the per-db
    /// telemetry gauges.
    pub fn publish_metrics(&self) {
        let fp = self.store.footprint();
        let ps = self.store.pool_stats();
        self.pool_hits.set(ps.hits as i64);
        self.pool_misses.set(ps.misses as i64);
        self.pool_evictions.set(ps.evictions as i64);
        self.resident_pages.set(fp.resident_pages as i64);
        self.disk_bytes.set(fp.disk_bytes as i64);
        self.wal_depth.set(fp.wal_depth as i64);
        self.wal_bytes.set(fp.wal_bytes as i64);
    }

    /// Checkpoints folded since this handle was created.
    pub fn checkpoints_total(&self) -> u64 {
        self.checkpoints.get()
    }

    /// Read-only inspection of the paged store at `dir`, for reporting
    /// tools (`exq db list`). Unlike [`PagedDb::open`], this never opens
    /// the WAL for writing — no torn-tail truncation, no compaction — so
    /// it is safe against a store a live server currently owns. The
    /// numbers are as of the last durable checkpoint; the footprint's
    /// `wal_depth` counts committed mutations still pending on top.
    pub fn inspect(dir: &Path) -> Result<PagedDbReport, CoreError> {
        let mut rd = exq_store::StoreReader::open(dir, exq_store::DEFAULT_PAGE_SIZE)?;
        let meta = rd.get(REC_META)?;
        let (block_count, payload_bytes, visible_bytes) = peek_meta_counts(&meta)?;
        Ok(PagedDbReport {
            block_count,
            hosted_bytes: visible_bytes + payload_bytes,
            footprint: rd.footprint(),
        })
    }
}

/// What [`PagedDb::inspect`] reports about a paged database directory, as
/// of its last durable checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct PagedDbReport {
    /// Sealed blocks the checkpointed metadata records (tombstones
    /// included) — [`Server::block_count`] of the checkpointed state.
    pub block_count: u32,
    /// [`Server::hosted_bytes`] of the checkpointed state: visible
    /// document + block payload bytes.
    pub hosted_bytes: u64,
    /// On-disk footprint; residency fields are zero (a read-only view has
    /// no buffer pool).
    pub footprint: StoreFootprint,
}

/// Walks the metadata image (see [`encode_meta`]) just far enough to pull
/// out the block count, the block payload bytes, and the visible document's
/// serialized size — the inputs of `db list`'s size columns — without
/// hydrating posting lists or indexes. Must skip fields in exactly the
/// order [`decode_meta`] reads them (the drift guard test in
/// `tests/outofcore.rs` compares both paths).
fn peek_meta_counts(bytes: &[u8]) -> Result<(u32, u64, u64), CoreError> {
    if bytes.len() < 6 || &bytes[..6] != META_MAGIC {
        return Err(CoreError::Persist(
            "paged metadata record has wrong magic".into(),
        ));
    }
    let mut r = R::new(&bytes[6..]);
    let visible_bytes = r.bytes()?.len() as u64;
    let n = r.count(24)?;
    for _ in 0..n {
        r.u64()?;
        read_interval(&mut r)?;
    }
    let n = r.count(8)?;
    for _ in 0..n {
        r.bytes()?;
    }
    let n = r.count(20)?;
    for _ in 0..n {
        read_interval(&mut r)?;
        r.u32()?;
    }
    let n = r.count(16)?;
    for _ in 0..n {
        r.bytes()?;
        let m = r.count(20)?;
        for _ in 0..m {
            r.u128()?;
            r.u32()?;
        }
    }
    let block_count = r.u32()?;
    let payload_bytes = r.u64()?;
    Ok((block_count, payload_bytes, visible_bytes))
}

/// The server's posting lists in persisted order: tags sorted, one list per
/// tag. Index `k` here *is* posting record id `(2<<32)|k`.
fn sorted_postings(server: &Server) -> Vec<&[exq_index::dsi::Interval]> {
    let mut entries: Vec<(&str, &[exq_index::dsi::Interval])> =
        server.metadata().dsi_table.iter().collect();
    entries.sort_by_key(|&(tag, _)| tag);
    entries.into_iter().map(|(_, list)| list).collect()
}

fn sorted_tags(server: &Server) -> Vec<&str> {
    let mut tags: Vec<&str> = server
        .metadata()
        .dsi_table
        .iter()
        .map(|(tag, _)| tag)
        .collect();
    tags.sort_unstable();
    tags
}

/// Encodes the metadata image (record 0): everything a server needs except
/// block payloads and posting lists, which live in their own records.
fn encode_meta(server: &Server) -> Vec<u8> {
    let mut w = W::default();
    w.buf.extend_from_slice(META_MAGIC);
    w.string(&server.visible_xml());

    let positions = server.interval_positions();
    w.u64(positions.len() as u64);
    for (pos, iv) in positions {
        w.u64(pos as u64);
        interval(&mut w, iv);
    }

    // Tag names only, in posting-record order; the lists are records.
    let tags = sorted_tags(server);
    w.u64(tags.len() as u64);
    for tag in tags {
        w.string(tag);
    }

    let bt = &server.metadata().block_table;
    w.u64(bt.len() as u64);
    for (iv, id) in bt.iter() {
        interval(&mut w, iv);
        w.u32(id);
    }

    let vi = &server.metadata().value_indexes;
    w.u64(vi.len() as u64);
    let mut attrs: Vec<&String> = vi.keys().collect();
    attrs.sort();
    for attr in attrs {
        w.string(attr);
        let entries = vi[attr].iter();
        w.u64(entries.len() as u64);
        for (k, v) in entries {
            w.u128(k);
            w.u32(v);
        }
    }

    w.u32(server.block_count() as u32);
    w.u64(server.payload_bytes());
    let dead = server.dead_block_ids();
    w.u64(dead.len() as u64);
    for id in dead {
        w.u32(id);
    }
    w.buf
}

/// Rebuilds a server from the metadata image, loading posting lists
/// through the store (their pages pin and release like any other read).
fn decode_meta(bytes: &[u8], db: &Arc<PagedDb>) -> Result<Server, CoreError> {
    if bytes.len() < 6 || &bytes[..6] != META_MAGIC {
        return Err(CoreError::Persist(
            "paged metadata record has wrong magic".into(),
        ));
    }
    let mut r = R::new(&bytes[6..]);
    let visible_xml = r.string()?;
    let visible = if visible_xml.is_empty() {
        Document::new()
    } else {
        Document::parse(&visible_xml)
            .map_err(|e| CoreError::Persist(format!("visible doc: {e}")))?
    };

    let n = r.count(24)?;
    let mut pos_intervals = HashMap::with_capacity(n);
    for _ in 0..n {
        let pos = r.u64()? as usize;
        pos_intervals.insert(pos, read_interval(&mut r)?);
    }

    let tag_count = r.count(8)?;
    let mut dsi = DsiIndexTable::new();
    for k in 0..tag_count {
        let tag = r.string()?;
        for iv in load_postings(&db.store, k as u32)? {
            dsi.add(&tag, iv);
        }
    }
    dsi.seal();

    let mut bt = BlockTable::new();
    let k = r.count(20)?;
    for _ in 0..k {
        let iv = read_interval(&mut r)?;
        let id = r.u32()?;
        bt.add(iv, id);
    }
    bt.seal();

    let mut value_indexes = HashMap::new();
    let k = r.count(16)?;
    for _ in 0..k {
        let attr = r.string()?;
        let n = r.count(20)?;
        let mut tree = BTree::new();
        for _ in 0..n {
            let key = r.u128()?;
            let val = r.u32()?;
            tree.insert(key, val);
        }
        value_indexes.insert(attr, tree);
    }

    let block_count = r.u32()?;
    let payload_bytes = r.u64()?;
    let k = r.count(4)?;
    let mut dead = HashSet::with_capacity(k);
    for _ in 0..k {
        dead.insert(r.u32()?);
    }
    if !r.finished() {
        return Err(CoreError::Persist(
            "paged metadata record has trailing bytes".into(),
        ));
    }

    Ok(Server::from_store_parts(
        visible,
        pos_intervals,
        crate::encrypt::ServerMetadata {
            dsi_table: dsi,
            block_table: bt,
            value_indexes,
        },
        BlockStore::Paged {
            db: Arc::clone(db),
            count: block_count,
            payload_bytes,
            overlay: HashMap::new(),
        },
        dead,
    ))
}

/// Block record layout: `[nonce 12][tag 16][ciphertext..]`. The id is the
/// record id's low 32 bits, so it is not stored again.
fn encode_block_record(b: &SealedBlock) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + b.ciphertext.len());
    out.extend_from_slice(&b.nonce);
    out.extend_from_slice(&b.tag);
    out.extend_from_slice(&b.ciphertext);
    out
}

fn decode_block_record(id: u32, raw: &[u8]) -> Result<SealedBlock, CoreError> {
    if raw.len() < 28 {
        return Err(CoreError::Persist(format!(
            "block record {id} truncated ({} bytes)",
            raw.len()
        )));
    }
    Ok(SealedBlock {
        id,
        nonce: raw[..12].try_into().unwrap(),
        tag: raw[12..28].try_into().unwrap(),
        ciphertext: raw[28..].to_vec(),
    })
}

fn read_server(lock: &RwLock<Server>) -> std::sync::RwLockReadGuard<'_, Server> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_server(lock: &RwLock<Server>) -> std::sync::RwLockWriteGuard<'_, Server> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Folds everything committed so far into the page file. Returns `false`
/// when the server is not paged or there is nothing to fold.
///
/// The snapshot (a server clone — cheap: block payloads are not resident)
/// and the WAL horizon are captured under the *same* read lock, so a
/// mutation is either in both (folded, then dropped from the log) or in
/// neither (stays in the log) — never double-applied on recovery. Queries
/// keep flowing during the fold; the write lock is only taken at the end,
/// briefly, to drain the overlay.
pub fn checkpoint_once(server: &RwLock<Server>) -> Result<bool, CoreError> {
    let (snapshot, wal_seq, db, wal_depth) = {
        let g = read_server(server);
        let Some(db) = g.paged_store() else {
            return Ok(false);
        };
        let wal_depth = db.store.footprint().wal_depth;
        if wal_depth == 0 {
            db.publish_metrics();
            return Ok(false);
        }
        (g.clone(), db.store.wal_next_seq() - 1, db, wal_depth)
    };

    crate::flight::event(
        crate::flight::Kind::CheckpointBegin,
        &db.label,
        wal_depth,
        0,
        0,
    );
    let t = Instant::now();
    let mut dirty: Vec<(u64, Option<Vec<u8>>)> = vec![(REC_META, Some(encode_meta(&snapshot)))];
    let lists = sorted_postings(&snapshot);
    for (k, list) in lists.iter().enumerate() {
        dirty.push((posting_record_id(k as u32), Some(encode_postings(list))));
    }
    // Tags removed by deletions leave stale high-index posting records.
    let mut k = lists.len() as u32;
    while db.store.contains(posting_record_id(k)) {
        dirty.push((posting_record_id(k), None));
        k += 1;
    }
    // Only blocks not yet in pages are written: O(update), not O(db).
    for (id, b) in snapshot.overlay_blocks() {
        if !db.block_checkpointed(id) {
            dirty.push((block_record_id(id), Some(encode_block_record(&b))));
        }
    }
    let folded = db.store.checkpoint(&dirty, wal_seq)?;
    {
        let mut g = write_server(server);
        g.drain_overlay_if(|id| db.block_checkpointed(id));
    }
    let elapsed = t.elapsed();
    telemetry::record_span("store.checkpoint", elapsed);
    telemetry::record_span(
        &format!("store.checkpoint.{}", span_label(&db.label)),
        elapsed,
    );
    db.checkpoints.inc();
    db.pages_folded.add(folded);
    db.wal_compactions.inc();
    db.publish_metrics();
    crate::flight::event(
        crate::flight::Kind::CheckpointEnd,
        &db.label,
        folded,
        elapsed.as_micros().min(u64::MAX as u128) as u64,
        0,
    );
    Ok(true)
}

/// Page budget of one background scrub step: enough to sweep a multi-GB
/// store in minutes of idle ticks without stealing a tick's latency.
pub const SCRUB_PAGES_PER_TICK: usize = 256;

/// What one [`scrub_once`] step did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Pages CRC-verified against disk this step.
    pub scanned: u64,
    /// Corrupt records rebuilt onto fresh pages.
    pub repaired: u64,
    /// Corrupt pages quarantined (never reallocated).
    pub quarantined: u64,
    /// Corrupt records no repair source could rebuild — the db must be
    /// marked faulted by the caller.
    pub lost: u64,
    /// Whether the step finished a full cyclic pass over the store.
    pub completed_pass: bool,
}

/// One bounded step of the self-healing scrub: verifies up to `max_pages`
/// page CRCs against the *disk* image and rebuilds whatever is corrupt.
///
/// The repair ladder, per corrupt record:
///
/// 1. **Resident state** — the metadata image and posting lists are fully
///    reconstructible from the in-memory server; block records inserted
///    since the last checkpoint still sit in the overlay. Re-encode.
/// 2. **Buffer pool** — a checkpointed block whose disk page rotted may
///    still have the good frame cached ([`PagedStore::salvage_record`]).
/// 3. **WAL tail** — the insert delta that sealed the block may still be
///    in the log; decode it and re-encode the block.
/// 4. Nothing worked: the record is **lost** and the caller must flip the
///    db to `Faulted` — serving a hole as an answer is not an option.
///
/// Rebuilt records land on fresh pages via [`PagedStore::rewrite_records`]
/// (a forced copy-on-write fold at the current WAL horizon), so the repair
/// itself is crash-safe: a kill mid-repair leaves the old directory, and
/// the next pass finds the same corruption again.
pub fn scrub_once(server: &RwLock<Server>, max_pages: usize) -> Result<ScrubOutcome, CoreError> {
    let g = read_server(server);
    let Some(db) = g.paged_store() else {
        return Ok(ScrubOutcome::default());
    };
    let report = db.store.scrub_step(max_pages)?;
    let mut out = ScrubOutcome {
        scanned: report.scanned_pages,
        completed_pass: report.completed_pass,
        ..ScrubOutcome::default()
    };
    if report.corrupt.is_empty() {
        return Ok(out);
    }

    let overlay: HashMap<u32, Arc<SealedBlock>> = g.overlay_blocks().into_iter().collect();
    let lists = sorted_postings(&g);
    let mut dirty: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
    for rec in &report.corrupt {
        out.quarantined += rec.pages.len() as u64;
        match rec.id {
            // The in-memory directory is authoritative; any forced fold
            // rewrites the on-disk chain onto fresh pages.
            exq_store::SCRUB_DIRECTORY => {}
            REC_META => dirty.push((REC_META, Some(encode_meta(&g)))),
            id if id >> 32 == 2 => {
                let k = (id & 0xFFFF_FFFF) as usize;
                // Posting lists live in the resident server; an index past
                // the current tag set is a stale record — drop it.
                dirty.push((id, lists.get(k).map(|list| encode_postings(list))));
            }
            id if id >> 32 == 1 => {
                let bid = (id & 0xFFFF_FFFF) as u32;
                if let Some(b) = overlay.get(&bid) {
                    dirty.push((id, Some(encode_block_record(b))));
                } else if let Some(raw) = db.store.salvage_record(id) {
                    dirty.push((id, Some(raw)));
                } else if let Some(b) = wal_tail_block(&db, bid)? {
                    dirty.push((id, Some(encode_block_record(&b))));
                } else {
                    out.lost += 1;
                }
            }
            _ => out.lost += 1,
        }
    }
    out.repaired = dirty.len() as u64;
    db.store.rewrite_records(&dirty)?;
    db.publish_metrics();
    crate::flight::event(
        crate::flight::Kind::ScrubRepair,
        &db.label,
        out.repaired,
        out.quarantined,
        out.lost,
    );
    Ok(out)
}

/// Last resort of the block repair ladder: scans the WAL tail's insert
/// deltas for sealed block `bid` (the insert that created a block may not
/// be folded yet — then its payload is still in the log, byte-exact).
fn wal_tail_block(db: &PagedDb, bid: u32) -> Result<Option<SealedBlock>, CoreError> {
    use crate::codec::WireCodec;
    let mut found = None;
    for rec in db.store.wal_records()? {
        if rec.kind != KIND_INSERT {
            continue;
        }
        let Ok(delta) = crate::update::InsertDelta::decode(&rec.payload) else {
            continue;
        };
        if let Some(b) = delta.blocks.into_iter().find(|b| b.id == bid) {
            found = Some(b); // later records win, like replay order
        }
    }
    Ok(found)
}

/// A db label safe inside a span (and thus metric) name: db ids allow
/// `.` and `-`, which spans reserve, so both map to `_`.
fn span_label(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Resolves the background checkpoint interval: `EXQ_CHECKPOINT_MS`
/// (milliseconds), default 2000.
pub fn checkpoint_interval() -> Duration {
    let ms = std::env::var("EXQ_CHECKPOINT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2000)
        .max(1);
    Duration::from_millis(ms)
}

/// A background checkpointer: folds the WAL into pages off the serving
/// path. Stops (and joins) on [`Checkpointer::stop`] or drop.
pub struct Checkpointer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Checkpointer {
    /// Spawns the checkpoint thread for one hosted server.
    pub fn spawn(server: Arc<RwLock<Server>>, interval: Duration) -> Checkpointer {
        Self::spawn_many(vec![server], interval)
    }

    /// Spawns one checkpoint thread sweeping several hosted servers (the
    /// multi-tenant serve loop uses this: one thread, all dbs).
    pub fn spawn_many(servers: Vec<Arc<RwLock<Server>>>, interval: Duration) -> Checkpointer {
        Self::spawn_loop(interval, move || {
            for s in &servers {
                // A checkpoint failure (e.g. disk full) leaves the WAL
                // intact; the next sweep retries. catch_unwind so a
                // panicking fold can never kill the background thread.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = checkpoint_once(s);
                }));
            }
        })
    }

    /// Spawns the checkpoint thread for a tenant registry: each sweep
    /// [`tend`]s every hosted db — checkpointing it, probing degraded
    /// storage for recovery, and spending idle ticks scrubbing page CRCs.
    /// The tenant list is re-read every sweep so dbs created or dropped
    /// after spawn are picked up.
    pub fn spawn_tenants(
        registry: Arc<crate::tenant::TenantRegistry>,
        interval: Duration,
    ) -> Checkpointer {
        Self::spawn_loop(interval, move || {
            for t in registry.tenants() {
                tend(&t);
            }
        })
    }

    fn spawn_loop(interval: Duration, mut sweep: impl FnMut() + Send + 'static) -> Checkpointer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("exq-checkpoint".into())
            .spawn(move || {
                let tick = Duration::from_millis(20).min(interval);
                let mut since = Duration::ZERO;
                while !stop2.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    since += tick;
                    if since < interval {
                        continue;
                    }
                    since = Duration::ZERO;
                    sweep();
                }
            })
            .expect("spawn checkpointer");
        Checkpointer {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One maintenance pass over one hosted db — the unit of the background
/// sweep, public so tests and single-shot tools can drive it without the
/// thread. In order:
///
/// * `Faulted` dbs are left alone (only a reopen clears that state).
/// * A `Degraded` db gets a storage probe ([`PagedStore::probe_sync`]):
///   if the WAL and page file fsync again, the db flips back to healthy
///   and this very pass resumes checkpointing; if not, it stays
///   read-only until the next sweep.
/// * A checkpoint failure (or panic — the fold runs under
///   `catch_unwind`, and the store's internal locks recover from poison)
///   flips the db to `Degraded` instead of killing the thread: reads
///   keep serving, the WAL keeps its committed tail, and the fold is
///   retried after recovery.
/// * An idle tick (nothing to fold) is spent scrubbing up to
///   [`SCRUB_PAGES_PER_TICK`] page CRCs; an unrepairable record flips
///   the db to `Faulted`.
pub fn tend(tenant: &crate::tenant::Tenant) {
    use crate::tenant::DbHealth;
    let server = &tenant.server;
    match tenant.health() {
        DbHealth::Faulted => return,
        DbHealth::Degraded => {
            let probe = {
                let g = read_server(server);
                match g.paged_store() {
                    Some(db) => db.store.probe_sync().map_err(CoreError::from),
                    None => Ok(()),
                }
            };
            if probe.is_err() {
                return;
            }
            tenant.set_healthy();
        }
        DbHealth::Healthy => {}
    }
    let folded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| checkpoint_once(server)));
    match folded {
        Ok(Ok(true)) => {}
        Ok(Ok(false)) => {
            // Idle: spend the tick verifying page CRCs.
            match scrub_once(server, SCRUB_PAGES_PER_TICK) {
                Ok(out) if out.lost > 0 => {
                    tenant.set_faulted(&format!("{} record(s) unrepairable", out.lost));
                }
                Ok(_) => {}
                Err(e) => tenant.set_degraded(&format!("scrub failed: {e}")),
            }
        }
        Ok(Err(e)) => tenant.set_degraded(&format!("checkpoint failed: {e}")),
        Err(_) => tenant.set_degraded("checkpoint panicked"),
    }
}
