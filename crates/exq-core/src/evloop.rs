//! The readiness-driven serve path: one event thread multiplexing every
//! connection over `epoll`, with query execution on a worker pool.
//!
//! The blocking loop in [`crate::transport`] pins one worker thread per
//! connection, so idle connections beyond `workers` starve fresh clients
//! outright. Here the event thread owns *all* sockets:
//!
//! * **epoll via raw syscalls** — the private `sys` module declares the four
//!   libc entry points (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//!   `eventfd`) directly; `std` already links libc, so no external crate
//!   is needed, in keeping with the repo's no-external-crates rule;
//! * **nonblocking sockets, partial-frame state machines** — each
//!   connection accumulates bytes in a read buffer and replies in a write
//!   buffer; a frame is dispatched only once complete, and any number of
//!   frames may be in flight per connection (replies echo the request id,
//!   so the client correlates them in any order);
//! * **compute off the event thread** — decoded requests go to worker
//!   threads over a bounded queue; workers run the same `serve_one`
//!   admission/fair-share/replay path as the blocking loop
//!   and push encoded replies to a completion queue, waking the event
//!   thread through an `eventfd`;
//! * **stall budgets** — the mid-frame read budget and the reply write
//!   budget from the blocking loop apply unchanged: a peer silent
//!   mid-frame, or one that stops draining replies, is dropped after
//!   `io_timeout` without pinning anything but its own buffers.
//!
//! `Ping` is answered inline on the event thread (a saturated worker pool
//! must not make the server look dead), and a full dispatch queue answers
//! `Busy` immediately — admission pressure is visible to clients, never an
//! unbounded queue.
//!
//! On non-Linux targets [`serve_event`] falls back to the blocking loop —
//! same wire behavior, different scheduling.

#[cfg(target_os = "linux")]
pub use linux::serve_event;

#[cfg(not(target_os = "linux"))]
pub fn serve_event(
    listener: std::net::TcpListener,
    registry: std::sync::Arc<crate::tenant::TenantRegistry>,
    config: crate::transport::ServeConfig,
) -> std::io::Result<crate::transport::ServeHandle> {
    crate::transport::serve_multi(listener, registry, config)
}

#[cfg(target_os = "linux")]
mod linux {
    use super::sys;
    use crate::codec::{frame_extra_len, DecodedFrame, Message, FRAME_HEADER_LEN};
    use crate::telemetry::{self, Counter, Gauge, Histogram};
    use crate::tenant::TenantRegistry;
    use crate::transport::{
        accept_metrics, apply_tenant_knobs, busy_reply, salvage_frame_ids, serve_one, ServeConfig,
        ServeHandle, ServeShared,
    };
    use std::collections::HashMap;
    use std::fs::File;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc, Mutex, OnceLock};
    use std::thread;
    use std::time::{Duration, Instant};

    /// Registry handles for the event-loop gauges.
    struct EvMetrics {
        /// Connections currently registered with the event loop.
        connections: Arc<Gauge>,
        /// `epoll_wait` returns (readiness wakeups, including timeouts).
        wakeups: Arc<Counter>,
        /// Requests dispatched to workers and not yet completed.
        queue_depth: Arc<Gauge>,
        /// Time a request spent in the dispatch queue before a worker
        /// picked it up — the saturation signal `exq top` watches.
        queue_wait: Arc<Histogram>,
    }

    fn ev_metrics() -> &'static EvMetrics {
        static METRICS: OnceLock<EvMetrics> = OnceLock::new();
        METRICS.get_or_init(|| EvMetrics {
            connections: telemetry::gauge("exq_evloop_connections"),
            wakeups: telemetry::counter("exq_evloop_wakeups_total"),
            queue_depth: telemetry::gauge("exq_evloop_queue_depth"),
            queue_wait: telemetry::histogram("exq_evloop_queue_wait_seconds"),
        })
    }

    /// epoll token of the listening socket.
    const TOKEN_LISTENER: u64 = u64::MAX;
    /// epoll token of the completion-queue eventfd.
    const TOKEN_WAKE: u64 = u64::MAX - 1;
    /// Events fetched per `epoll_wait`.
    const MAX_EVENTS: usize = 256;
    /// Read scratch size: large enough to drain a burst of pipelined
    /// frames per readiness event without repeated syscalls.
    const READ_CHUNK: usize = 64 * 1024;

    /// One request handed to a worker.
    struct Job {
        token: u64,
        frame: DecodedFrame,
        /// When the event loop enqueued it (queue-wait attribution).
        enqueued: Instant,
    }

    /// One encoded reply on its way back to the writer.
    struct Completion {
        token: u64,
        bytes: Vec<u8>,
    }

    /// Per-connection state machine.
    struct Conn {
        stream: TcpStream,
        /// Bytes received but not yet framed.
        rbuf: Vec<u8>,
        /// Encoded replies not yet written, from `wpos`.
        wbuf: Vec<u8>,
        wpos: usize,
        /// Requests dispatched to workers, replies still owed.
        inflight: usize,
        /// No more reads: peer EOF, framing error, or shutdown. The
        /// connection closes once owed replies are written (or time out).
        closing: bool,
        /// EPOLLOUT currently registered.
        want_write: bool,
        /// Mid-frame stall budget: armed while a partial frame sits in
        /// `rbuf`, cleared by progress.
        read_deadline: Option<Instant>,
        /// Write stall budget: armed while the socket refuses bytes we owe,
        /// cleared by progress.
        write_deadline: Option<Instant>,
    }

    impl Conn {
        fn interest(&self) -> u32 {
            let mut ev = sys::EPOLLIN | sys::EPOLLRDHUP;
            if self.want_write {
                ev |= sys::EPOLLOUT;
            }
            ev
        }
    }

    /// Runs the frame protocol over `listener` with the readiness-based
    /// event loop. Same wire behavior and admission policy as
    /// [`crate::transport::serve_multi`]; unlike it, thousands of idle
    /// connections cost buffers, not threads. Returns immediately; the
    /// returned handle owns the event and worker threads.
    pub fn serve_event(
        listener: TcpListener,
        registry: Arc<TenantRegistry>,
        config: ServeConfig,
    ) -> std::io::Result<ServeHandle> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        crate::transport::tune_listen_backlog(&listener, &config);
        apply_tenant_knobs(&registry, &config);
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServeShared {
            registry: Arc::clone(&registry),
            inflight: AtomicUsize::new(0),
        });

        let epoll = sys::Epoll::new()?;
        let wake = Arc::new(sys::event_fd()?);
        epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.as_raw_fd(), sys::EPOLLIN, TOKEN_WAKE)?;

        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.backlog());
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&job_rx);
            let shr = Arc::clone(&shared);
            let cfg = config.clone();
            let done = Arc::clone(&completions);
            let wake = Arc::clone(&wake);
            threads.push(thread::spawn(move || loop {
                let job = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(poisoned) => poisoned.into_inner().recv(),
                };
                let Ok(job) = job else { return }; // event loop gone
                ev_metrics().queue_depth.add(-1);
                if telemetry::enabled() {
                    ev_metrics()
                        .queue_wait
                        .observe_duration(job.enqueued.elapsed());
                }
                let d = &job.frame;
                let reply = serve_one(&shr, &cfg, d);
                let bytes = reply.encode_frame_req(d.version, d.trace, d.req_id);
                match done.lock() {
                    Ok(mut guard) => guard.push(Completion {
                        token: job.token,
                        bytes,
                    }),
                    Err(poisoned) => poisoned.into_inner().push(Completion {
                        token: job.token,
                        bytes,
                    }),
                }
                sys::wake(&wake);
            }));
        }

        {
            let stop_flag = Arc::clone(&stop);
            threads.push(thread::spawn(move || {
                EventLoop {
                    epoll,
                    listener,
                    wake,
                    job_tx,
                    completions,
                    stop: stop_flag,
                    config,
                    conns: HashMap::new(),
                    next_token: 0,
                    accept_resume: None,
                    accept_backoff: Duration::from_millis(1),
                    accept_error_streak: 0,
                }
                .run();
            }));
        }

        Ok(ServeHandle::assemble(addr, stop, threads, registry))
    }

    struct EventLoop {
        epoll: sys::Epoll,
        listener: TcpListener,
        wake: Arc<File>,
        job_tx: mpsc::SyncSender<Job>,
        completions: Arc<Mutex<Vec<Completion>>>,
        stop: Arc<AtomicBool>,
        config: ServeConfig,
        conns: HashMap<u64, Conn>,
        /// Monotonic connection tokens — never reused, so a completion for
        /// a closed connection cannot alias a new one on the same fd.
        next_token: u64,
        /// While set, accepting is paused (fd exhaustion backoff); the
        /// listener is re-armed when the instant passes.
        accept_resume: Option<Instant>,
        accept_backoff: Duration,
        /// Consecutive accept failures (reset by a successful accept),
        /// reported in flight-recorder events.
        accept_error_streak: u64,
    }

    impl EventLoop {
        fn run(mut self) {
            // The tick bounds deadline sweeps and shutdown latency even if
            // no readiness event arrives.
            let tick = self
                .config
                .poll_interval
                .clamp(Duration::from_millis(10), Duration::from_millis(200));
            let mut events = [sys::EpollEvent::empty(); MAX_EVENTS];
            let mut scratch = vec![0u8; READ_CHUNK];
            while let Ok(n) = self.epoll.wait(&mut events, tick) {
                ev_metrics().wakeups.inc();
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                for ev in &events[..n] {
                    match ev.token() {
                        TOKEN_LISTENER => self.accept_ready(),
                        TOKEN_WAKE => sys::drain(&self.wake),
                        token => self.conn_ready(token, ev.events(), &mut scratch),
                    }
                }
                self.drain_completions();
                self.sweep(Instant::now());
            }
            // Shutdown: closing the sockets here unblocks nothing (workers
            // drain via the dropped job sender) and every fd is owned, so
            // teardown is just drops.
            let open = self.conns.len() as i64;
            ev_metrics().connections.add(-open);
        }

        // ------------------------------------------------------- accept --

        fn accept_ready(&mut self) {
            if self.accept_resume.is_some() {
                return; // paused: re-armed by the sweep
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.accept_backoff = Duration::from_millis(1);
                        self.accept_error_streak = 0;
                        self.register(stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // EMFILE and friends persist; pause the listener so
                        // a level-triggered epoll doesn't spin on it.
                        accept_metrics().accept_errors.inc();
                        self.accept_error_streak += 1;
                        crate::flight::event(
                            crate::flight::Kind::AcceptError,
                            "",
                            self.accept_error_streak,
                            0,
                            0,
                        );
                        let _ = self.epoll.del(self.listener.as_raw_fd());
                        self.accept_resume = Some(Instant::now() + self.accept_backoff);
                        self.accept_backoff =
                            (self.accept_backoff * 2).min(Duration::from_millis(100));
                        break;
                    }
                }
            }
        }

        fn register(&mut self, stream: TcpStream) {
            if stream.set_nonblocking(true).is_err() {
                return;
            }
            stream.set_nodelay(true).ok();
            let token = self.next_token;
            self.next_token += 1;
            let conn = Conn {
                stream,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                inflight: 0,
                closing: false,
                want_write: false,
                read_deadline: None,
                write_deadline: None,
            };
            if self
                .epoll
                .add(conn.stream.as_raw_fd(), conn.interest(), token)
                .is_err()
            {
                return;
            }
            self.conns.insert(token, conn);
            ev_metrics().connections.add(1);
        }

        // --------------------------------------------------- connections --

        fn conn_ready(&mut self, token: u64, events: u32, scratch: &mut [u8]) {
            if events & sys::EPOLLERR != 0 {
                self.close(token);
                return;
            }
            if events & sys::EPOLLOUT != 0 && !self.flush(token) {
                self.close(token);
                return;
            }
            if events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
                self.read_ready(token, scratch);
            }
        }

        fn read_ready(&mut self, token: u64, scratch: &mut [u8]) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.closing {
                loop {
                    match conn.stream.read(scratch) {
                        Ok(0) => {
                            conn.closing = true;
                            break;
                        }
                        Ok(n) => conn.rbuf.extend_from_slice(&scratch[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.close(token);
                            return;
                        }
                    }
                }
            }
            self.process_frames(token);
            if let Some(conn) = self.conns.get(&token) {
                let drained = conn.closing && conn.inflight == 0 && conn.wbuf.len() == conn.wpos;
                if drained || !self.flush(token) {
                    self.close(token);
                }
            }
        }

        /// Extracts and dispatches every complete frame in the read buffer.
        fn process_frames(&mut self, token: u64) {
            loop {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.closing && conn.rbuf.is_empty() {
                    return;
                }
                if conn.rbuf.len() < FRAME_HEADER_LEN {
                    // Empty = idle (no budget); partial header = mid-frame.
                    conn.read_deadline = if conn.rbuf.is_empty() {
                        None
                    } else {
                        Some(
                            conn.read_deadline
                                .unwrap_or_else(|| Instant::now() + self.config.io_timeout),
                        )
                    };
                    return;
                }
                let mut header = [0u8; FRAME_HEADER_LEN];
                header.copy_from_slice(&conn.rbuf[..FRAME_HEADER_LEN]);
                let (version, _, payload_len) = match Message::parse_header(&header) {
                    Ok(v) => v,
                    Err(e) => {
                        // Framing is unrecoverable: answer once, stop
                        // reading, close when the reply drains.
                        let bytes = error_frame(&e, crate::codec::LEGACY_PROTOCOL_VERSION, 0, 0);
                        conn.rbuf.clear();
                        conn.closing = true;
                        self.queue_reply(token, bytes);
                        return;
                    }
                };
                let total = FRAME_HEADER_LEN + frame_extra_len(version) + payload_len;
                if conn.rbuf.len() < total {
                    conn.read_deadline = Some(
                        conn.read_deadline
                            .unwrap_or_else(|| Instant::now() + self.config.io_timeout),
                    );
                    return;
                }
                let reply_inline = match Message::decode_frame_ext(&conn.rbuf[..total]) {
                    Err(e) => {
                        let (trace, req_id) = salvage_frame_ids(&conn.rbuf[..total], version);
                        conn.rbuf.clear();
                        conn.closing = true;
                        self.queue_reply(token, error_frame(&e, version, trace, req_id));
                        return;
                    }
                    Ok(d) => {
                        conn.rbuf.drain(..total);
                        conn.read_deadline = None;
                        if matches!(d.msg, Message::Ping) {
                            // Liveness answers never queue behind work.
                            Some(Message::Pong.encode_frame_req(d.version, d.trace, d.req_id))
                        } else {
                            match self.job_tx.try_send(Job {
                                token,
                                frame: d,
                                enqueued: Instant::now(),
                            }) {
                                Ok(()) => {
                                    ev_metrics().queue_depth.add(1);
                                    conn.inflight += 1;
                                    None
                                }
                                Err(mpsc::TrySendError::Full(job)) => {
                                    // Dispatch queue saturated: shed here,
                                    // visibly, instead of queueing without
                                    // bound.
                                    accept_metrics().accept_rejected.inc();
                                    let d = job.frame;
                                    Some(
                                        busy_reply(d.version, self.config.retry_after)
                                            .encode_frame_req(d.version, d.trace, d.req_id),
                                    )
                                }
                                Err(mpsc::TrySendError::Disconnected(_)) => {
                                    conn.closing = true;
                                    None
                                }
                            }
                        }
                    }
                };
                if let Some(bytes) = reply_inline {
                    self.queue_reply(token, bytes);
                }
            }
        }

        // -------------------------------------------------------- writes --

        fn queue_reply(&mut self, token: u64, bytes: Vec<u8>) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.wbuf.extend_from_slice(&bytes);
            if !self.flush(token) {
                self.close(token);
            }
        }

        /// Writes as much of the pending buffer as the socket takes.
        /// Returns `false` if the connection is dead.
        fn flush(&mut self, token: u64) -> bool {
            let Some(conn) = self.conns.get_mut(&token) else {
                return true;
            };
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => return false,
                    Ok(n) => {
                        conn.wpos += n;
                        conn.write_deadline = None;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        conn.write_deadline = Some(
                            conn.write_deadline
                                .unwrap_or_else(|| Instant::now() + self.config.io_timeout),
                        );
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
            if conn.wpos >= conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
                conn.write_deadline = None;
            }
            let want_write = conn.wpos < conn.wbuf.len();
            if want_write != conn.want_write {
                conn.want_write = want_write;
                let fd = conn.stream.as_raw_fd();
                let interest = conn.interest();
                if self.epoll.modify(fd, interest, token).is_err() {
                    return false;
                }
            }
            true
        }

        // --------------------------------------------------- completions --

        fn drain_completions(&mut self) {
            let done: Vec<Completion> = {
                let mut guard = match self.completions.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                std::mem::take(&mut *guard)
            };
            for completion in done {
                let Some(conn) = self.conns.get_mut(&completion.token) else {
                    continue; // connection died while the worker ran
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                if conn.closing && conn.inflight == 0 && conn.wbuf.len() == conn.wpos {
                    // Peer already gone and nothing else owed: the reply
                    // has no reader.
                    self.close(completion.token);
                    continue;
                }
                self.queue_reply(completion.token, completion.bytes);
            }
        }

        // -------------------------------------------------------- sweeps --

        fn sweep(&mut self, now: Instant) {
            // Re-arm a paused listener once the backoff elapsed.
            if self.accept_resume.is_some_and(|t| now >= t) {
                self.accept_resume = None;
                if self
                    .epoll
                    .add(self.listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)
                    .is_ok()
                {
                    self.accept_ready();
                }
            }
            let expired: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| {
                    c.read_deadline.is_some_and(|d| now >= d)
                        || c.write_deadline.is_some_and(|d| now >= d)
                        || (c.closing && c.inflight == 0 && c.wbuf.len() == c.wpos)
                })
                .map(|(&t, _)| t)
                .collect();
            for token in expired {
                self.close(token);
            }
        }

        fn close(&mut self, token: u64) {
            if let Some(conn) = self.conns.remove(&token) {
                // Dropping the stream closes the fd, which removes it from
                // the epoll interest list.
                drop(conn);
                ev_metrics().connections.add(-1);
            }
        }
    }

    /// Encodes a codec failure as an error frame echoing whatever ids were
    /// salvageable.
    fn error_frame(
        err: &crate::codec::CodecError,
        version: u8,
        trace: u64,
        req_id: u64,
    ) -> Vec<u8> {
        let core: crate::error::CoreError = err.clone().into();
        Message::Error(crate::codec::WireError::from_core(&core))
            .encode_frame_req(version, trace, req_id)
    }
}

/// Raw Linux bindings: the four libc entry points the event loop needs,
/// declared directly (std already links libc; no external crate).
#[cfg(target_os = "linux")]
mod sys {
    use std::fs::File;
    use std::io;
    use std::io::{Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, RawFd};
    use std::time::Duration;

    // The kernel/glibc `struct epoll_event` is packed on x86_64 (the
    // 64-bit data field is 4-byte aligned there) and naturally aligned
    // everywhere else; matching glibc's definition exactly is what makes
    // calling its functions sound.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        pub(super) fn empty() -> EpollEvent {
            EpollEvent { events: 0, data: 0 }
        }

        pub(super) fn events(&self) -> u32 {
            // By-value reads are safe even when the struct is packed.
            self.events
        }

        pub(super) fn token(&self) -> u64 {
            self.data
        }
    }

    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLERR: u32 = 0x008;
    pub(super) const EPOLLHUP: u32 = 0x010;
    pub(super) const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    /// An epoll instance; the fd closes on drop (via the wrapping `File`).
    pub(super) struct Epoll {
        file: File,
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` is a fresh, owned descriptor.
            Ok(Epoll {
                file: unsafe { File::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.file.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub(super) fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub(super) fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits for readiness, returning the number of events filled in.
        /// `EINTR` is reported as zero events, not an error.
        pub(super) fn wait(
            &self,
            events: &mut [EpollEvent],
            timeout: Duration,
        ) -> io::Result<usize> {
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let rc = unsafe {
                epoll_wait(
                    self.file.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(rc as usize)
        }
    }

    /// A nonblocking eventfd wrapped in a `File` (closes on drop; `&File`
    /// is `Read + Write`, so workers and the event thread share one fd).
    pub(super) fn event_fd() -> io::Result<File> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a fresh, owned descriptor.
        Ok(unsafe { File::from_raw_fd(fd) })
    }

    /// Nudges the event loop: adds 1 to the eventfd counter. Best-effort —
    /// a full counter still leaves the loop's periodic tick as backstop.
    pub(super) fn wake(fd: &File) {
        let _ = (&*fd).write(&1u64.to_ne_bytes());
    }

    /// Clears the eventfd counter after a wake.
    pub(super) fn drain(fd: &File) {
        let mut buf = [0u8; 8];
        let _ = (&*fd).read(&mut buf);
    }
}
