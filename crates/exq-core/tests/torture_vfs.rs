//! VFS-level crash torture: run the paged engine on the in-memory
//! [`FaultVfs`], kill the "machine" at a seeded random VFS operation,
//! revive, reopen, and verify against a fault-free in-memory twin — over
//! and over. The contract under test is the ISSUE's acceptance bar:
//!
//! * zero acknowledged-mutation loss: every mutation whose call returned
//!   `Ok` is present after recovery, bit-identically;
//! * an unacknowledged in-flight mutation may be either absent (torn WAL
//!   tail dropped) or durable (crash after the fsync) — never partial;
//! * a store that survived a power cut stays fully usable: the next
//!   mutation and checkpoint behave exactly like the twin's.
//!
//! A second battery proves the degraded-mode story end to end over TCP:
//! under 100% injected WAL-write failure the db keeps serving reads, sheds
//! mutations with the typed `Unavailable` wire error (code 10, carrying a
//! retry-after hint), and recovers to `Healthy` once the fault clears.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::store::{checkpoint_once, scrub_once, tend, PagedDb, StoreOptions};
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::tenant::{DbHealth, TenantRegistry};
use exq_core::transport::{serve_multi, ServeConfig, TcpTransport};
use exq_core::{Client, CoreError, Server};
use exq_store::{FaultConfig, FaultVfs};
use exq_xml::Document;
use std::net::TcpListener;
use std::path::Path;
use std::sync::{Arc, RwLock};

fn tiny_opts() -> StoreOptions {
    StoreOptions {
        page_size: 256,
        cache_bytes: 4096,
    }
}

fn hosted() -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
            <patient><pname>Zoe</pname><SSN>112358</SSN><age>29</age>
              <insurance><policy coverage="10000">91111</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 31)
        .unwrap()
        .split()
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

enum Mut {
    Insert(&'static str),
    Delete(&'static str),
}

/// The per-cycle mutation script; a checkpoint is attempted after index 1
/// and after the last mutation so kills land inside the checkpointer too.
const SCRIPT: &[Mut] = &[
    Mut::Insert("<patient><pname>Ada</pname><SSN>999111</SSN><age>36</age></patient>"),
    Mut::Delete("//patient[age = 40]"),
    Mut::Insert("<patient><pname>Lin</pname><SSN>555000</SSN><age>50</age></patient>"),
    Mut::Insert("<patient><pname>Sam</pname><SSN>123987</SSN><age>61</age></patient>"),
];

fn apply(client: &mut Client, server: &mut Server, i: usize) -> Result<(), CoreError> {
    match &SCRIPT[i] {
        Mut::Insert(xml) => client
            .insert(server, "/hospital", xml, 5 + i as u64)
            .map(|_| ()),
        Mut::Delete(q) => client.delete(server, q).map(|_| ()),
    }
}

/// One fault-free pass to learn how many VFS operations the mutation
/// script consumes — the window seeded kills are drawn from.
fn probe_ops(base_server: &[u8], base_client: &[u8]) -> u64 {
    let vfs = FaultVfs::new(0);
    let mut server = Server::load_bytes(base_server).unwrap();
    let mut client = Client::load_bytes(base_client).unwrap();
    let _db = PagedDb::attach_new_with(
        &mut server,
        Arc::new(vfs.clone()),
        Path::new("/db"),
        "tort",
        tiny_opts(),
    )
    .unwrap();
    let start = vfs.ops();
    let lock = RwLock::new(server);
    for i in 0..SCRIPT.len() {
        apply(&mut client, &mut lock.write().unwrap(), i).unwrap();
        if i == 1 {
            checkpoint_once(&lock).unwrap();
        }
    }
    checkpoint_once(&lock).unwrap();
    vfs.ops() - start
}

/// ≥200 seeded kill-at-a-random-VFS-op → revive → reopen → verify cycles.
#[test]
fn seeded_power_cuts_lose_no_acknowledged_mutation() {
    const CYCLES: u64 = 220;
    let (client0, server0) = hosted();
    let base_server = server0.save_bytes().unwrap();
    let base_client = client0.save_bytes();
    let window = probe_ops(&base_server, &base_client);
    assert!(window > 20, "script consumes suspiciously few VFS ops");

    let mut crashed_cycles = 0u64;
    for cycle in 0..CYCLES {
        let vfs = FaultVfs::new(cycle);
        let mut server = Server::load_bytes(&base_server).unwrap();
        let mut client = Client::load_bytes(&base_client).unwrap();
        let mut twin_client = Client::load_bytes(&base_client).unwrap();
        let mut twin = Server::load_bytes(&base_server).unwrap();

        let db = PagedDb::attach_new_with(
            &mut server,
            Arc::new(vfs.clone()),
            Path::new("/db"),
            "tort",
            tiny_opts(),
        )
        .unwrap();
        // Kill at a seeded operation somewhere inside the script's window
        // (creation itself runs fault-free so every cycle starts equal).
        vfs.crash_at_op(vfs.ops() + 1 + splitmix(cycle) % window);

        let lock = RwLock::new(server);
        let mut acked = 0usize;
        let mut in_flight = None;
        for i in 0..SCRIPT.len() {
            match apply(&mut client, &mut lock.write().unwrap(), i) {
                Ok(()) => {
                    apply(&mut twin_client, &mut twin, i).unwrap();
                    acked += 1;
                }
                Err(_) => {
                    in_flight = Some(i);
                    break;
                }
            }
            if i == 1 {
                // Kills inside the checkpoint are part of the torture; the
                // next mutation surfaces the power cut if one landed here.
                let _ = checkpoint_once(&lock);
            }
        }
        if in_flight.is_none() {
            let _ = checkpoint_once(&lock);
        }
        if vfs.crashed() {
            crashed_cycles += 1;
        }
        drop(lock);
        drop(db);

        // "Replace the disk controller": un-wedge the VFS. Files roll back
        // to their last durable image, exactly like power-on after a cut.
        vfs.revive();
        let (recovered, rdb, _replay) =
            PagedDb::open_with(Arc::new(vfs.clone()), Path::new("/db"), "tort", tiny_opts())
                .unwrap_or_else(|e| panic!("cycle {cycle}: recovery open failed: {e}"));

        // Zero acked-mutation loss, bit-identically: the recovered image
        // must equal the twin at `acked` mutations — or, when a mutation
        // was in flight and the cut landed after its WAL fsync, the twin
        // plus that one mutation. Nothing else is survivable output.
        let got = recovered.save_bytes().unwrap();
        let aligned = if got == twin.save_bytes().unwrap() {
            true
        } else if let Some(i) = in_flight {
            apply(&mut twin_client, &mut twin, i).unwrap();
            got == twin.save_bytes().unwrap()
        } else {
            false
        };
        assert!(
            aligned,
            "cycle {cycle}: recovered state matches neither {acked} acked \
             mutations nor acked+in-flight (in_flight={in_flight:?})"
        );

        // The survivor stays fully usable: one more mutation + checkpoint
        // on both sides must stay bit-identical.
        let mut post_a = twin_client.clone();
        let mut post_b = twin_client.clone();
        let mut recovered = recovered;
        post_a
            .insert(
                &mut recovered,
                "/hospital",
                "<patient><pname>Pat</pname><SSN>424242</SSN><age>44</age></patient>",
                99,
            )
            .unwrap_or_else(|e| panic!("cycle {cycle}: post-recovery insert failed: {e}"));
        post_b
            .insert(
                &mut twin,
                "/hospital",
                "<patient><pname>Pat</pname><SSN>424242</SSN><age>44</age></patient>",
                99,
            )
            .unwrap();
        let lock = RwLock::new(recovered);
        checkpoint_once(&lock)
            .unwrap_or_else(|e| panic!("cycle {cycle}: post-recovery checkpoint failed: {e}"));
        assert_eq!(
            lock.into_inner().unwrap().save_bytes().unwrap(),
            twin.save_bytes().unwrap(),
            "cycle {cycle}: post-recovery mutation diverged from the twin"
        );
        drop(rdb);
    }
    // The harness must actually be killing things, not sweeping a window
    // past the end of the run.
    assert!(
        crashed_cycles > CYCLES / 2,
        "only {crashed_cycles}/{CYCLES} cycles saw a power cut"
    );
}

/// Bit rot on every data page of a live store: the scrubber must detect,
/// quarantine, and repair all of it from resident state — no record lost,
/// answers bit-identical afterwards.
#[test]
fn scrubber_repairs_full_surface_bit_rot() {
    let (mut client, server0) = hosted();
    let mut server = Server::load_bytes(&server0.save_bytes().unwrap()).unwrap();
    let vfs = FaultVfs::new(9);
    // A pool big enough to keep every page resident: repair may then pull
    // any block from CRC-verified frames even with the disk image rotten.
    let opts = StoreOptions {
        page_size: 256,
        cache_bytes: 1 << 20,
    };
    let _db = PagedDb::attach_new_with(
        &mut server,
        Arc::new(vfs.clone()),
        Path::new("/db"),
        "rot",
        opts,
    )
    .unwrap();
    client
        .insert(
            &mut server,
            "/hospital",
            "<patient><pname>Ada</pname><SSN>999111</SSN><age>36</age></patient>",
            5,
        )
        .unwrap();
    let lock = RwLock::new(server);
    checkpoint_once(&lock).unwrap();
    // Serve the whole database once: every record faults in through the
    // buffer pool, so its CRC-verified frames hold the entire store —
    // the in-memory source the repair ladder re-seals cold blocks from.
    let _ = lock.read().unwrap().save_bytes().unwrap();

    // Rot one bit in every page past the two superblocks.
    let data = Path::new("/db/data.exqp");
    let total_pages = vfs.file_bytes(data).unwrap().len() / 256;
    let mut rotted = 0u64;
    for page in 2..total_pages {
        let offset = (page * 256 + 37 + page) as u64;
        if vfs.rot_bit(data, offset, (page % 8) as u8) {
            rotted += 1;
        }
    }
    assert!(rotted > 4, "expected a real page surface, rotted {rotted}");

    let outcome = scrub_once(&lock, usize::MAX).unwrap();
    assert!(outcome.scanned > 0);
    assert_eq!(outcome.lost, 0, "resident store must repair everything");
    assert!(
        outcome.quarantined > 0,
        "full-surface rot must quarantine pages"
    );

    // The repaired store answers correctly and survives a fresh open.
    let answers = client
        .query(&lock.read().unwrap(), "//patient/pname")
        .unwrap()
        .results;
    assert!(answers.iter().any(|r| r.contains("Ada")));
    checkpoint_once(&lock).unwrap();
    drop(lock);
    let (reopened, _rdb, _) =
        PagedDb::open_with(Arc::new(vfs.clone()), Path::new("/db"), "rot", opts).unwrap();
    let again = client.query(&reopened, "//patient/pname").unwrap().results;
    assert_eq!(again, answers, "repair changed the answers");
}

/// 100% injected WAL-write failure over a real TCP serve loop: reads keep
/// flowing, mutations shed with the typed retry-after error, the health
/// gauge flips Degraded, and clearing the fault heals the db via `tend`.
#[test]
fn full_wal_write_failure_serves_reads_in_degraded_mode() {
    let (mut client, server0) = hosted();
    let mut server = Server::load_bytes(&server0.save_bytes().unwrap()).unwrap();
    let vfs = FaultVfs::new(11);
    let _db = PagedDb::attach_new_with(
        &mut server,
        Arc::new(vfs.clone()),
        Path::new("/db"),
        "deg",
        tiny_opts(),
    )
    .unwrap();
    let shared = Arc::new(RwLock::new(server));
    let registry = Arc::new(TenantRegistry::single("deg-db", Arc::clone(&shared)).unwrap());
    let tenant = registry.tenants().pop().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve_multi(listener, Arc::clone(&registry), ServeConfig::default()).unwrap();
    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();

    // Healthy baseline.
    let before = client.query_via(&mut tcp, "//patient/pname").unwrap();
    assert_eq!(before.results.len(), 3);
    assert_eq!(tenant.health(), DbHealth::Healthy);

    // Every write now fails: the first mutation loses the WAL append and
    // must flip the db Degraded...
    vfs.set_config(FaultConfig {
        write_err_per_mille: 1000,
        ..FaultConfig::default()
    });
    let record = "<patient><pname>Eve</pname><SSN>111000</SSN><age>20</age></patient>";
    let first = client.insert_via(&mut tcp, "/hospital", record, 77);
    assert!(first.is_err(), "mutation with a dead WAL must not ack");
    assert_eq!(tenant.health(), DbHealth::Degraded);

    // ...subsequent mutations are shed up front with the typed
    // non-retriable Unavailable error carrying the retry-after hint...
    let second = client.insert_via(&mut tcp, "/hospital", record, 78);
    let msg = format!("{}", second.unwrap_err());
    assert!(
        msg.contains("unavailable") && msg.contains("retry after"),
        "expected the typed Unavailable error, got: {msg}"
    );

    // ...while reads keep being served, bit-identically, on the same loop.
    for _ in 0..5 {
        let out = client.query_via(&mut tcp, "//patient/pname").unwrap();
        assert_eq!(out.results, before.results, "degraded reads must not drift");
    }
    let gauge = exq_core::telemetry::render();
    assert!(
        gauge.contains("exq_db_health{db=\"deg-db\"} 1"),
        "health gauge must read Degraded:\n{gauge}"
    );

    // Fault cleared: one checkpointer tend probes the disk, heals the db,
    // and mutations flow again.
    vfs.set_config(FaultConfig::default());
    tend(&tenant);
    assert_eq!(tenant.health(), DbHealth::Healthy);
    client
        .insert_via(&mut tcp, "/hospital", record, 79)
        .expect("healed db must accept mutations again");
    let after = client.query_via(&mut tcp, "//patient/pname").unwrap();
    assert_eq!(after.results.len(), 4);
    handle.shutdown();
}
