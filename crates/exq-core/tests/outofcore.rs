//! Out-of-core equivalence: a database hosted through the paged store with
//! a deliberately tiny buffer budget must answer every query identically to
//! the all-in-RAM server, survive mutations + reopen, and migrate legacy
//! single-file artifacts without touching them.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::store::{checkpoint_once, Checkpointer, PagedDb, StoreOptions};
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::{Client, Server};
use exq_xml::Document;
use std::sync::{Arc, RwLock};

/// Tiny pages + a budget of a few frames: every multi-block query must
/// page blocks in and out through the pool.
fn tiny_opts() -> StoreOptions {
    StoreOptions {
        page_size: 256,
        cache_bytes: 1024,
    }
}

fn hosted() -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
            <patient><pname>Zoe</pname><SSN>112358</SSN><age>29</age>
              <insurance><policy coverage="10000">91111</policy></insurance></patient>
            <patient><pname>Quinn</pname><SSN>314159</SSN><age>61</age>
              <insurance><policy coverage="250000">27182</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /age)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 31)
        .unwrap()
        .split()
}

const QUERIES: &[&str] = &[
    "//patient",
    "//patient[pname = 'Betty']/SSN",
    "//patient[.//policy/@coverage >= 10000]/SSN",
    "//insurance//policy",
    "//patient[age = 40]/pname",
    "//pname",
];

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("exq-ooc-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn paged_answers_match_resident_under_tiny_budget() {
    let (client, resident) = hosted();
    let dir = scratch("equiv");
    let path = dir.join("db.exq");
    resident.save(&path).unwrap();

    let (paged, db, replay) = PagedDb::open_or_migrate(&path, "equiv", tiny_opts()).unwrap();
    assert_eq!(replay.replayed, 0);
    for q in QUERIES {
        let a = client.query(&resident, q).unwrap().results;
        let b = client.query(&paged, q).unwrap().results;
        assert_eq!(a, b, "paged answer diverged for {q}");
    }
    // The budget is a handful of 256-byte frames against a multi-KiB
    // database: the pool must actually have evicted.
    let fp = db.footprint();
    assert!(
        fp.resident_pages < fp.page_count,
        "database fits in the tiny budget (resident {} of {}), test is vacuous",
        fp.resident_pages,
        fp.page_count
    );
    assert!(
        db.pool_stats().evictions > 0,
        "no evictions under tiny budget"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn migration_leaves_legacy_file_untouched() {
    let (_, server) = hosted();
    let dir = scratch("migrate");
    let path = dir.join("db.exq");
    server.save(&path).unwrap();
    let before = std::fs::read(&path).unwrap();

    let (_paged, _db, _) = PagedDb::open_or_migrate(&path, "migrate", tiny_opts()).unwrap();
    assert!(PagedDb::is_paged(&path), "pages sibling missing");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "migration modified the legacy artifact"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutations_replay_from_wal_on_reopen() {
    let (mut client, resident) = hosted();
    let dir = scratch("replay");
    let path = dir.join("db.exq");
    resident.save(&path).unwrap();

    let (mut paged, db, _) = PagedDb::open_or_migrate(&path, "replay", tiny_opts()).unwrap();
    client
        .insert(
            &mut paged,
            "/hospital",
            "<patient><pname>Ada</pname><SSN>999111</SSN><age>36</age></patient>",
            5,
        )
        .unwrap();
    client.delete(&mut paged, "//patient[age = 40]").unwrap();
    assert!(db.footprint().wal_depth >= 2, "mutations were not logged");

    // Bit-identical recovery: the canonical single-file image of the
    // reopened database must equal the live (never-crashed) one.
    let reference = paged.save_bytes().unwrap();
    let expect: Vec<_> = QUERIES
        .iter()
        .map(|q| client.query(&paged, q).unwrap().results)
        .collect();
    drop(paged);
    drop(db);

    let (reopened, _db, replay) = PagedDb::open_or_migrate(&path, "replay", tiny_opts()).unwrap();
    assert_eq!(replay.replayed, 2);
    assert_eq!(replay.failed, 0);
    assert_eq!(
        reopened.save_bytes().unwrap(),
        reference,
        "recovered state is not bit-identical"
    );
    for (q, want) in QUERIES.iter().zip(&expect) {
        assert_eq!(&client.query(&reopened, q).unwrap().results, want, "{q}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Drift guard for `PagedDb::inspect`'s metadata peek: its numbers must
/// match what a full open reports, and inspection must leave the store's
/// files byte-identical (a live server may own them).
#[test]
fn read_only_inspect_matches_full_open_and_mutates_nothing() {
    let (mut client, resident) = hosted();
    let dir = scratch("inspect");
    let path = dir.join("db.exq");
    resident.save(&path).unwrap();

    let (mut paged, db, _) = PagedDb::open_or_migrate(&path, "inspect", tiny_opts()).unwrap();
    let pages = PagedDb::pages_dir(&path);

    let report = PagedDb::inspect(&pages).unwrap();
    assert_eq!(report.block_count as usize, paged.block_count());
    assert_eq!(report.hosted_bytes as usize, paged.hosted_bytes());
    assert_eq!(report.footprint.wal_depth, 0);
    assert!(report.footprint.disk_bytes > 0);

    // Leave a committed-but-unfolded mutation in the WAL, then inspect:
    // the store files must come back byte-identical (no tail truncation,
    // no compaction) and the pending record must show as WAL depth.
    client
        .insert(
            &mut paged,
            "/hospital",
            "<patient><pname>Ada</pname><SSN>999111</SSN><age>36</age></patient>",
            5,
        )
        .unwrap();
    let wal_before = std::fs::read(pages.join("log.wal")).unwrap();
    let data_before = std::fs::read(pages.join("data.exqp")).unwrap();
    let report = PagedDb::inspect(&pages).unwrap();
    assert_eq!(report.footprint.wal_depth, 1, "pending mutation not seen");
    assert_eq!(std::fs::read(pages.join("log.wal")).unwrap(), wal_before);
    assert_eq!(std::fs::read(pages.join("data.exqp")).unwrap(), data_before);

    // After folding the mutation, inspect matches the updated server again.
    let lock = RwLock::new(paged);
    assert!(checkpoint_once(&lock).unwrap());
    let paged = lock.into_inner().unwrap();
    let report = PagedDb::inspect(&pages).unwrap();
    assert_eq!(report.block_count as usize, paged.block_count());
    assert_eq!(report.hosted_bytes as usize, paged.hosted_bytes());
    assert_eq!(report.footprint.wal_depth, 0);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_folds_wal_and_skips_clean_stores() {
    let (mut client, resident) = hosted();
    let dir = scratch("ckpt");
    let path = dir.join("db.exq");
    resident.save(&path).unwrap();

    let (mut paged, db, _) = PagedDb::open_or_migrate(&path, "ckpt", tiny_opts()).unwrap();
    client
        .insert(
            &mut paged,
            "/hospital",
            "<patient><pname>Lin</pname><SSN>555000</SSN><age>50</age></patient>",
            5,
        )
        .unwrap();
    client.delete(&mut paged, "//patient[age = 29]").unwrap();
    let reference = paged.save_bytes().unwrap();

    let lock = RwLock::new(paged);
    assert!(checkpoint_once(&lock).unwrap(), "checkpoint had work to do");
    assert_eq!(db.footprint().wal_depth, 0, "WAL not folded");
    assert_eq!(db.checkpoints_total(), 1);
    // Nothing left to fold: the second call is a no-op.
    assert!(!checkpoint_once(&lock).unwrap());
    drop(lock);
    drop(db);

    let (reopened, db, replay) = PagedDb::open_or_migrate(&path, "ckpt", tiny_opts()).unwrap();
    assert_eq!(replay.replayed, 0, "checkpointed mutations replayed again");
    assert_eq!(reopened.save_bytes().unwrap(), reference);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_checkpointer_folds_off_the_serving_path() {
    let (mut client, resident) = hosted();
    let dir = scratch("bg");
    let path = dir.join("db.exq");
    resident.save(&path).unwrap();

    let (mut paged, db, _) = PagedDb::open_or_migrate(&path, "bg", tiny_opts()).unwrap();
    client
        .insert(
            &mut paged,
            "/hospital",
            "<patient><pname>Kim</pname><SSN>777000</SSN><age>44</age></patient>",
            5,
        )
        .unwrap();
    let lock = Arc::new(RwLock::new(paged));
    let ckpt = Checkpointer::spawn(Arc::clone(&lock), std::time::Duration::from_millis(30));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while db.footprint().wal_depth > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    ckpt.stop();
    assert_eq!(
        db.footprint().wal_depth,
        0,
        "background fold never happened"
    );
    // Serving continued throughout: the lock is still usable.
    let out = client
        .query(&lock.read().unwrap(), "//patient[age = 44]/pname")
        .unwrap();
    assert_eq!(out.results.len(), 1);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aggregates_and_naive_path_work_paged() {
    use exq_core::aggregate::Aggregate;
    let (client, resident) = hosted();
    let dir = scratch("agg");
    let path = dir.join("db.exq");
    resident.save(&path).unwrap();

    let (paged, db, _) = PagedDb::open_or_migrate(&path, "agg", tiny_opts()).unwrap();
    let max = client
        .aggregate(&paged, "//policy/@coverage", Aggregate::Max)
        .unwrap();
    assert_eq!(max.value.as_deref(), Some("1000000"));
    let naive_a = client.export(&resident).unwrap().unwrap().to_xml();
    let naive_b = client.export(&paged).unwrap().unwrap().to_xml();
    assert_eq!(naive_a, naive_b, "naive export diverged out-of-core");
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
