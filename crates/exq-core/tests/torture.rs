//! Crash-recovery torture: truncate the WAL at (and inside) every record
//! boundary, flip bits mid-log, and kill the checkpointer at every
//! injection point. In every survivable case the reopened database must be
//! bit-identical to a never-crashed reference; in every unsurvivable case
//! the open must fail loudly — the server never serves garbage.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::store::{checkpoint_once, PagedDb, StoreOptions};
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::{Client, Server};
use exq_xml::Document;
use std::path::{Path, PathBuf};
use std::sync::RwLock;

const WAL_MAGIC_LEN: usize = 8; // b"EXQWAL1\n"
const FRAME_OVERHEAD: usize = 4 + 8 + 1 + 4; // len | seq | kind | crc

fn tiny_opts() -> StoreOptions {
    StoreOptions {
        page_size: 256,
        cache_bytes: 4096,
    }
}

fn hosted() -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
            <patient><pname>Zoe</pname><SSN>112358</SSN><age>29</age>
              <insurance><policy coverage="10000">91111</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 31)
        .unwrap()
        .split()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exq-torture-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_pages(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// A golden run: migrate, apply `MUTATIONS` without checkpointing, and
/// record the canonical single-file image after every mutation prefix.
/// Returns (client, pages dir, per-prefix reference images).
struct Golden {
    dir: PathBuf,
    pages: PathBuf,
    refs: Vec<Vec<u8>>,
}

fn golden(name: &str) -> Golden {
    let (mut client, resident) = hosted();
    let dir = scratch(name);
    let path = dir.join("db.exq");
    resident.save(&path).unwrap();
    let (mut paged, db, _) = PagedDb::open_or_migrate(&path, name, tiny_opts()).unwrap();

    let mut refs = vec![paged.save_bytes().unwrap()];
    client
        .insert(
            &mut paged,
            "/hospital",
            "<patient><pname>Ada</pname><SSN>999111</SSN><age>36</age></patient>",
            5,
        )
        .unwrap();
    refs.push(paged.save_bytes().unwrap());
    client.delete(&mut paged, "//patient[age = 40]").unwrap();
    refs.push(paged.save_bytes().unwrap());
    client
        .insert(
            &mut paged,
            "/hospital",
            "<patient><pname>Lin</pname><SSN>555000</SSN><age>50</age></patient>",
            5,
        )
        .unwrap();
    refs.push(paged.save_bytes().unwrap());
    assert_eq!(db.footprint().wal_depth, 3, "golden run WAL depth");
    drop(paged);
    drop(db);
    Golden {
        pages: PagedDb::pages_dir(&path),
        dir,
        refs,
    }
}

/// Byte offsets of each frame boundary in a WAL image (offset 0 of the
/// returned vec = end of magic = "zero records kept").
fn frame_boundaries(wal: &[u8]) -> Vec<usize> {
    assert_eq!(&wal[..WAL_MAGIC_LEN], b"EXQWAL1\n");
    let mut bounds = vec![WAL_MAGIC_LEN];
    let mut pos = WAL_MAGIC_LEN;
    while pos < wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        pos += FRAME_OVERHEAD + len;
        bounds.push(pos);
    }
    assert_eq!(pos, wal.len(), "WAL has trailing bytes");
    bounds
}

fn reopen(dir: &Path, label: &str) -> (Server, exq_core::store::ReplaySummary) {
    let (s, _db, replay) = PagedDb::open(dir, label, tiny_opts()).unwrap();
    (s, replay)
}

#[test]
fn truncation_at_every_record_boundary_recovers_the_prefix() {
    let g = golden("bound");
    let wal = std::fs::read(g.pages.join("log.wal")).unwrap();
    let bounds = frame_boundaries(&wal);
    assert_eq!(bounds.len(), g.refs.len(), "one boundary per prefix");

    let work = g.dir.join("work.exq.pages");
    for (kept, &cut) in bounds.iter().enumerate() {
        copy_pages(&g.pages, &work);
        std::fs::write(work.join("log.wal"), &wal[..cut]).unwrap();
        let (server, replay) = reopen(&work, "bound");
        assert_eq!(replay.replayed, kept, "cut at byte {cut}");
        assert!(!replay.dropped_torn_tail);
        assert_eq!(
            server.save_bytes().unwrap(),
            g.refs[kept],
            "state after clean cut to {kept} records is not bit-identical"
        );
    }
    std::fs::remove_dir_all(&g.dir).ok();
}

#[test]
fn torn_tails_inside_every_frame_drop_only_the_torn_record() {
    let g = golden("torn");
    let wal = std::fs::read(g.pages.join("log.wal")).unwrap();
    let bounds = frame_boundaries(&wal);

    let work = g.dir.join("work.exq.pages");
    for kept in 0..bounds.len() - 1 {
        let (start, end) = (bounds[kept], bounds[kept + 1]);
        // A crash can land mid-append at any byte: sample the first, a
        // middle, and the last-but-one offset of the torn frame.
        for cut in [start + 1, start + (end - start) / 2, end - 1] {
            copy_pages(&g.pages, &work);
            std::fs::write(work.join("log.wal"), &wal[..cut]).unwrap();
            let (server, replay) = reopen(&work, "torn");
            assert_eq!(replay.replayed, kept, "torn cut at byte {cut}");
            assert!(replay.dropped_torn_tail, "cut at {cut} not flagged torn");
            assert_eq!(
                server.save_bytes().unwrap(),
                g.refs[kept],
                "torn tail at byte {cut} did not recover prefix {kept}"
            );
        }
    }
    std::fs::remove_dir_all(&g.dir).ok();
}

#[test]
fn interior_corruption_is_refused_not_served() {
    let g = golden("flip");
    let wal = std::fs::read(g.pages.join("log.wal")).unwrap();
    let bounds = frame_boundaries(&wal);

    let work = g.dir.join("work.exq.pages");
    // Flip one byte in the middle of every frame except the last; with
    // valid frames after the damage this is disk corruption, not a torn
    // append, and the open must fail rather than skip records.
    for kept in 0..bounds.len() - 2 {
        let mid = bounds[kept] + (bounds[kept + 1] - bounds[kept]) / 2;
        let mut damaged = wal.clone();
        damaged[mid] ^= 0xA5;
        copy_pages(&g.pages, &work);
        std::fs::write(work.join("log.wal"), &damaged).unwrap();
        assert!(
            PagedDb::open(&work, "flip", tiny_opts()).is_err(),
            "interior flip at byte {mid} was silently accepted"
        );
    }
    // A flip inside the *final* frame is indistinguishable from a crashed
    // append: the damaged record drops, everything before it survives.
    let last = bounds.len() - 2;
    let mid = bounds[last] + (bounds[last + 1] - bounds[last]) / 2;
    let mut damaged = wal.clone();
    damaged[mid] ^= 0xA5;
    copy_pages(&g.pages, &work);
    std::fs::write(work.join("log.wal"), &damaged).unwrap();
    let (server, replay) = reopen(&work, "flip");
    assert_eq!(replay.replayed, last);
    assert!(replay.dropped_torn_tail);
    assert_eq!(server.save_bytes().unwrap(), g.refs[last]);
    std::fs::remove_dir_all(&g.dir).ok();
}

#[test]
fn kill_during_checkpoint_at_every_injection_point_loses_nothing() {
    // Injection points: 1 = before data pages sync, 2 = before the
    // superblock flip, 3 = after the flip but before WAL compaction.
    for point in [1u8, 2, 3] {
        let g = golden(&format!("kill{point}"));
        let work = g.dir.join("work.exq.pages");
        copy_pages(&g.pages, &work);

        let (server, db, replay) = PagedDb::open(&work, "kill", tiny_opts()).unwrap();
        assert_eq!(replay.replayed, 3);
        db.inject_checkpoint_crash(point);
        let lock = RwLock::new(server);
        let err = checkpoint_once(&lock).unwrap_err();
        assert!(
            format!("{err}").contains("injected checkpoint crash"),
            "point {point}: expected injected crash, got {err}"
        );
        drop(lock);
        drop(db);

        // "kill -9": reopen from disk with no in-process state carried over.
        let (recovered, db, _) = PagedDb::open(&work, "kill", tiny_opts()).unwrap();
        assert_eq!(
            recovered.save_bytes().unwrap(),
            *g.refs.last().unwrap(),
            "crash at point {point} lost a committed mutation"
        );

        // The store stays fully usable: the next checkpoint completes and
        // the folded state is still bit-identical.
        let lock = RwLock::new(recovered);
        checkpoint_once(&lock).unwrap();
        assert_eq!(db.footprint().wal_depth, 0);
        drop(lock);
        drop(db);
        let (folded, _, replay) = PagedDb::open(&work, "kill", tiny_opts()).unwrap();
        assert_eq!(replay.replayed, 0);
        assert_eq!(folded.save_bytes().unwrap(), *g.refs.last().unwrap());
        std::fs::remove_dir_all(&g.dir).ok();
    }
}

#[test]
fn data_page_corruption_is_detected() {
    let g = golden("page");
    let work = g.dir.join("work.exq.pages");
    copy_pages(&g.pages, &work);
    // Flip a byte inside a data page (past the two superblocks) and prove
    // the CRC catches it: either the open fails or the damaged record does.
    let mut data = std::fs::read(work.join("data.exqp")).unwrap();
    let target = 2 * 256 + 100; // page 2, inside the payload
    data[target] ^= 0xFF;
    std::fs::write(work.join("data.exqp"), &data).unwrap();
    let served = PagedDb::open(&work, "page", tiny_opts()).and_then(|(s, _, _)| s.save_bytes());
    match served {
        Err(_) => {}
        Ok(bytes) => assert_eq!(
            bytes,
            *g.refs.last().unwrap(),
            "corrupted page served altered data as genuine"
        ),
    }
    std::fs::remove_dir_all(&g.dir).ok();
}

#[test]
fn missing_wal_or_superblock_fails_loudly() {
    let g = golden("missing");
    let work = g.dir.join("work.exq.pages");

    copy_pages(&g.pages, &work);
    std::fs::write(work.join("log.wal"), b"garbage").unwrap();
    assert!(PagedDb::open(&work, "missing", tiny_opts()).is_err());

    copy_pages(&g.pages, &work);
    let mut data = std::fs::read(work.join("data.exqp")).unwrap();
    // Destroy both superblock slots.
    for b in data.iter_mut().take(2 * 256) {
        *b = 0;
    }
    std::fs::write(work.join("data.exqp"), &data).unwrap();
    assert!(PagedDb::open(&work, "missing", tiny_opts()).is_err());
    std::fs::remove_dir_all(&g.dir).ok();
}
