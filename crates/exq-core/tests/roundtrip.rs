//! End-to-end correctness: for every scheme and query, the secure pipeline
//! must return exactly `Q(D)` — the answer on the plaintext database.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_xml::Document;
use exq_xpath::{eval_document, Path};

fn hospital() -> Document {
    Document::parse(
        r#"<hospital>
            <patient id="1"><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
              <treat><disease>measles</disease><doctor>Walker</doctor></treat>
              <insurance><policy coverage="1000000">34221</policy>
                          <policy coverage="10000">26544</policy></insurance></patient>
            <patient id="2"><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <treat><disease>leukemia</disease><doctor>Brown</doctor></treat>
              <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
            <patient id="3"><pname>Zoe</pname><SSN>112233</SSN><age>35</age>
              <treat><disease>flu</disease><doctor>Walker</doctor></treat>
              <insurance><policy coverage="10000">91111</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap()
}

fn constraints() -> Vec<SecurityConstraint> {
    [
        "//insurance",
        "//patient:(/pname, /SSN)",
        "//patient:(/pname, //disease)",
        "//treat:(/disease, /doctor)",
    ]
    .iter()
    .map(|s| SecurityConstraint::parse(s).unwrap())
    .collect()
}

/// Reference answer on the plaintext document, rendered the same way the
/// client renders results.
fn reference(doc: &Document, query: &str) -> Vec<String> {
    let path = Path::parse(query).unwrap();
    eval_document(doc, &path)
        .into_iter()
        .map(|n| match doc.node(n).kind() {
            exq_xml::NodeKind::Element(_) => doc.node_to_xml(n),
            exq_xml::NodeKind::Attribute(_, v) => v.clone(),
            exq_xml::NodeKind::Text(t) => t.clone(),
        })
        .collect()
}

const QUERIES: &[&str] = &[
    // Structure-only, various depths and axes.
    "/hospital",
    "/hospital/patient",
    "//patient",
    "//pname",
    "//SSN",
    "//disease",
    "//insurance",
    "//policy",
    "//treat/doctor",
    "//patient/treat/disease",
    "/hospital/patient/insurance/policy",
    "//insurance//*",
    "//patient/*",
    "//policy/@coverage",
    "//patient/@id",
    // Existence predicates.
    "//patient[insurance]/pname",
    "//patient[treat]/SSN",
    "//patient[nonexistent]/pname",
    // Value predicates on encrypted categorical values.
    "//patient[pname = 'Betty']/SSN",
    "//patient[pname = 'Matt']//disease",
    "//patient[.//disease = 'diarrhea']/SSN",
    "//treat[disease = 'leukemia']/doctor",
    "//patient[pname = 'Nobody']/SSN",
    // Value predicates on encrypted numeric values.
    "//patient[.//policy/@coverage >= 10000]/pname",
    "//patient[.//policy/@coverage > 10000]/pname",
    "//patient[.//policy/@coverage = 5000]/SSN",
    "//patient[.//policy/@coverage < 6000]/pname",
    // Plain-value predicates (age is not an SC endpoint).
    "//patient[age = 40]/pname",
    "//patient[age >= 35]/SSN",
    "//patient[age < 40]/age",
    "//patient[age != 35]/pname",
    // Combined predicates.
    "//patient[age = 35][.//disease = 'flu']/pname",
    "//patient[insurance][pname = 'Zoe']/age",
    // Wildcards and deep outputs.
    "//treat/*",
    "//*",
    // Unsupported server axes → naive fallback.
    "//disease/../doctor",
    "//treat/following-sibling::treat/disease",
    // Trailing text().
    "//pname/text()",
    // Descendant-or-self attribute steps (the paper's §6 worked query).
    "//patient[.//insurance//@coverage >= 10000]//SSN",
    "//insurance//@coverage",
    "//patient//@coverage",
    // Positional and boolean predicates (client-verified).
    "//patient[2]/pname",
    "//patient[last()]/SSN",
    "//patient/treat[1]/disease",
    "//patient[age = 35 and pname = 'Betty']/SSN",
    "//patient[pname = 'Betty' or pname = 'Zoe']/age",
    "//treat[disease = 'diarrhea' and doctor = 'Smith']",
    "//patient[not(age = 35)]/pname",
    "//patient[not(insurance)]",
    "//patient[contains(pname, 'att')]/SSN",
    "//patient[starts-with(SSN, '76')]/pname",
];

fn check_all(kind: SchemeKind, seed: u64) {
    let doc = hospital();
    let cs = constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, kind, seed)
        .unwrap();
    for q in QUERIES {
        let mut expected = reference(&doc, q);
        let mut got = hosted
            .query(q)
            .unwrap_or_else(|e| panic!("query {q} failed under {kind:?}: {e}"))
            .results;
        expected.sort();
        got.sort();
        assert_eq!(got, expected, "mismatch for {q} under {kind:?}");
    }
}

#[test]
fn roundtrip_opt() {
    check_all(SchemeKind::Opt, 42);
}

#[test]
fn roundtrip_app() {
    check_all(SchemeKind::App, 42);
}

#[test]
fn roundtrip_sub() {
    check_all(SchemeKind::Sub, 42);
}

#[test]
fn roundtrip_top() {
    check_all(SchemeKind::Top, 42);
}

#[test]
fn roundtrip_different_seeds() {
    for seed in [1, 7, 99, 12345] {
        let doc = hospital();
        let cs = constraints();
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &cs, SchemeKind::Opt, seed)
            .unwrap();
        let q = "//patient[pname = 'Betty']/SSN";
        let got = hosted.query(q).unwrap().results;
        assert_eq!(got, ["<SSN>763895</SSN>"], "seed {seed}");
    }
}

#[test]
fn naive_baseline_agrees() {
    let doc = hospital();
    let cs = constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 42)
        .unwrap();
    for q in QUERIES {
        let mut expected = reference(&doc, q);
        let mut got = hosted.query_naive(q).unwrap().results;
        expected.sort();
        got.sort();
        assert_eq!(got, expected, "naive mismatch for {q}");
    }
}

#[test]
fn secure_ships_less_than_naive() {
    let doc = hospital();
    let cs = constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 42)
        .unwrap();
    let q = "//patient[pname = 'Betty']/SSN";
    let secure = hosted.query(q).unwrap();
    let naive = hosted.query_naive(q).unwrap();
    assert!(secure.bytes_to_client < naive.bytes_to_client);
    assert!(secure.blocks_shipped < naive.blocks_shipped);
}

#[test]
fn all_constraints_enforced() {
    let doc = hospital();
    let cs = constraints();
    for kind in SchemeKind::ALL {
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &cs, kind, 42)
            .unwrap();
        assert!(
            hosted.scheme.enforces(&doc, &cs),
            "{kind:?} fails to enforce the SCs"
        );
    }
}

#[test]
fn union_queries_through_pipeline() {
    use exq_xpath::{eval_union, Path};
    let doc = hospital();
    let cs = constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 42)
        .unwrap();
    for q in [
        "//pname | //SSN",
        "//patient[age = 35]/pname | //patient[age = 40]/SSN",
        "//insurance | //treat",
    ] {
        let paths = Path::parse_union(q).unwrap();
        let mut expected: Vec<String> = eval_union(&doc, &paths)
            .into_iter()
            .map(|n| match doc.node(n).kind() {
                exq_xml::NodeKind::Element(_) => doc.node_to_xml(n),
                exq_xml::NodeKind::Attribute(_, v) => v.clone(),
                exq_xml::NodeKind::Text(t) => t.clone(),
            })
            .collect();
        let mut got = hosted.query(q).unwrap().results;
        expected.sort();
        expected.dedup();
        got.sort();
        got.dedup();
        assert_eq!(got, expected, "union mismatch for {q}");
    }
}

#[test]
fn timing_phases_populated() {
    let doc = hospital();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &constraints(), SchemeKind::Opt, 42)
        .unwrap();
    let out = hosted.query("//patient[pname = 'Betty']/SSN").unwrap();
    assert!(out.timing.total() > std::time::Duration::ZERO);
    assert!(out.timing.transmit > std::time::Duration::ZERO);
    assert!(!out.naive_fallback);
    // Fallback flag set for unsupported axes.
    let out = hosted.query("//disease/../doctor").unwrap();
    assert!(out.naive_fallback);
}
