//! Property tests for the wire codec: arbitrary messages survive an
//! encode/decode round trip bit-exactly, and corrupted frames fail with an
//! error — never a panic, never a bogus decode that re-encodes differently.

use exq_core::codec::{
    crc32, CodecError, Message, WireCodec, WireError, CHECKSUM_FIELD_LEN, DB_ID_FIELD_LEN,
    FRAME_EXTRA_LEN, FRAME_HEADER_LEN, LEGACY_PROTOCOL_VERSION, PROTOCOL_VERSION, REQ_ID_FIELD_LEN,
    TRACE_FIELD_LEN, V2_PROTOCOL_VERSION,
};
use exq_core::telemetry::{Side, SpanRec};
use exq_core::update::{DeleteOutcome, InsertDelta, InsertionSlot};
use exq_core::wire::{SAxis, SPred, SStep, ServerQuery, ServerResponse};
use exq_crypto::{SealedBlock, ValueRange};
use exq_xpath::{CmpOp, Literal};
use proptest::prelude::*;
use std::time::Duration;

fn arb_interval() -> impl Strategy<Value = exq_index::dsi::Interval> {
    (0u64..1 << 48, 1u64..1 << 16)
        .prop_map(|(lo, span)| exq_index::dsi::Interval::new(lo, lo + span))
}

fn arb_tag() -> impl Strategy<Value = String> {
    "[a-zA-Z@_][a-zA-Z0-9_]{0,10}".prop_map(|s| s)
}

fn arb_value_range() -> impl Strategy<Value = ValueRange> {
    (any::<u128>(), any::<u128>()).prop_map(|(a, b)| ValueRange {
        lo: a.min(b),
        hi: a.max(b),
    })
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1e12f64..1e12).prop_map(Literal::Number),
        "[ -~]{0,16}".prop_map(Literal::Str),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_axis() -> impl Strategy<Value = SAxis> {
    prop_oneof![
        Just(SAxis::Child),
        Just(SAxis::Descendant),
        Just(SAxis::DescendantOrSelf),
        Just(SAxis::Attribute),
    ]
}

/// A flat step (no predicates) — the recursion base.
fn arb_flat_step() -> impl Strategy<Value = SStep> {
    (arb_axis(), proptest::collection::vec(arb_tag(), 0..3)).prop_map(|(axis, tags)| SStep {
        axis,
        tags,
        preds: vec![],
    })
}

/// Steps whose predicates may nest further steps, up to a small depth.
fn arb_step() -> BoxedStrategy<SStep> {
    arb_flat_step()
        .prop_recursive(3, 12, 3, |inner| {
            let pred = prop_oneof![
                proptest::collection::vec(inner.clone(), 1..3).prop_map(SPred::Exists),
                (
                    proptest::collection::vec(inner, 1..3),
                    proptest::option::of((arb_tag(), arb_value_range())),
                    proptest::option::of((arb_cmp(), arb_literal())),
                )
                    .prop_map(|(path, range, plain)| SPred::Value {
                        path,
                        range,
                        plain
                    }),
            ];
            (
                arb_axis(),
                proptest::collection::vec(arb_tag(), 0..3),
                proptest::collection::vec(pred, 0..2),
            )
                .prop_map(|(axis, tags, preds)| SStep { axis, tags, preds })
        })
        .boxed()
}

fn arb_query() -> impl Strategy<Value = ServerQuery> {
    (proptest::collection::vec(arb_step(), 1..4), any::<u16>()).prop_map(|(steps, a)| {
        let anchor = a as usize % steps.len();
        ServerQuery { steps, anchor }
    })
}

fn arb_block() -> impl Strategy<Value = SealedBlock> {
    (
        any::<u32>(),
        any::<[u8; 12]>(),
        proptest::collection::vec(any::<u8>(), 0..200),
        any::<[u8; 16]>(),
    )
        .prop_map(|(id, nonce, ciphertext, tag)| SealedBlock {
            id,
            nonce,
            ciphertext,
            tag,
        })
}

fn arb_span() -> impl Strategy<Value = SpanRec> {
    (
        (1u64..u64::MAX, 1u64..u64::MAX, any::<u64>()),
        (
            "[a-z][a-z._]{0,20}",
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |((trace, id, parent), (name, server, start_ns, dur_ns))| SpanRec {
                trace,
                id,
                parent,
                name,
                side: if server { Side::Server } else { Side::Client },
                start_ns,
                dur_ns,
            },
        )
}

fn arb_response() -> impl Strategy<Value = ServerResponse> {
    (
        "[ -~]{0,200}",
        proptest::collection::vec(arb_block(), 0..4),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        proptest::collection::vec(arb_span(), 0..4),
    )
        .prop_map(
            |(pruned_xml, blocks, t1, t2, served_from_cache, spans)| ServerResponse {
                pruned_xml,
                blocks: blocks.into_iter().map(std::sync::Arc::new).collect(),
                translate_time: Duration::from_nanos(t1 as u64),
                process_time: Duration::from_nanos(t2 as u64),
                served_from_cache,
                spans,
            },
        )
}

fn arb_delta() -> impl Strategy<Value = InsertDelta> {
    (
        arb_interval(),
        "[ -~]{0,100}",
        proptest::collection::vec(arb_block(), 0..3),
        proptest::collection::vec((arb_tag(), arb_interval()), 0..4),
        proptest::collection::vec((arb_interval(), any::<u32>()), 0..4),
        proptest::collection::vec((arb_tag(), any::<u128>(), any::<u32>()), 0..4),
    )
        .prop_map(
            |(parent, visible_fragment, blocks, dsi_entries, block_entries, value_entries)| {
                InsertDelta {
                    parent,
                    visible_fragment,
                    blocks,
                    dsi_entries,
                    block_entries,
                    value_entries,
                }
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_query().prop_map(Message::Query),
        Just(Message::NaiveQuery),
        any::<u32>().prop_map(Message::FetchBlock),
        (arb_tag(), any::<bool>())
            .prop_map(|(attr_key, max)| Message::ValueExtreme { attr_key, max }),
        arb_query().prop_map(Message::Locate),
        arb_interval().prop_map(Message::InsertionSlotReq),
        arb_delta().prop_map(Message::ApplyInsert),
        arb_query().prop_map(Message::DeleteWhere),
        arb_response().prop_map(Message::Answer),
        proptest::option::of(arb_block()).prop_map(Message::Block),
        proptest::option::of((any::<u128>(), any::<u32>())).prop_map(Message::Extreme),
        proptest::collection::vec(arb_interval(), 0..6).prop_map(Message::Intervals),
        (arb_interval(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
            |(parent, a, b, id)| {
                Message::Slot(InsertionSlot {
                    parent,
                    gap_lo: a.min(b),
                    gap_hi: a.max(b),
                    next_block_id: id,
                })
            }
        ),
        Just(Message::InsertOk),
        (any::<u16>(), any::<u16>()).prop_map(|(d, s)| Message::Deleted(DeleteOutcome {
            deleted: d as usize,
            skipped_in_block: s as usize,
        })),
        (0u8..12, "[ -~]{0,40}")
            .prop_map(|(code, message)| Message::Error(WireError { code, message })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn message_frame_roundtrip(msg in arb_message()) {
        let frame = msg.encode_frame();
        prop_assert_eq!(frame.len(), msg.frame_len());
        let back = Message::decode_frame(&frame).expect("decode own frame");
        // WireError codes are canonicalized on decode (unknown → transport),
        // so compare re-encodings rather than values for error frames.
        prop_assert_eq!(back.encode_frame(), frame);
    }

    #[test]
    fn query_payload_roundtrip(q in arb_query()) {
        let bytes = q.encode();
        let back = ServerQuery::decode(&bytes).expect("decode");
        prop_assert_eq!(back, q);
    }

    #[test]
    fn response_payload_roundtrip(r in arb_response()) {
        let bytes = r.encode();
        let back = ServerResponse::decode(&bytes).expect("decode");
        prop_assert_eq!(back, r);
    }

    #[test]
    fn delta_payload_roundtrip(d in arb_delta()) {
        let bytes = d.encode();
        let back = InsertDelta::decode(&bytes).expect("decode");
        prop_assert_eq!(back, d);
    }

    /// Any truncation of a valid frame errors cleanly.
    #[test]
    fn truncation_never_panics(msg in arb_message(), cut in 0.0f64..1.0) {
        let frame = msg.encode_frame();
        let keep = (frame.len() as f64 * cut) as usize;
        if keep < frame.len() {
            prop_assert!(Message::decode_frame(&frame[..keep]).is_err());
        }
    }

    /// Single-byte corruption anywhere in the frame either fails cleanly or
    /// decodes to a message that re-encodes without panicking. (A flipped
    /// byte inside, say, a tag string can still be a valid frame.)
    #[test]
    fn corruption_never_panics(msg in arb_message(), pos in any::<u32>(), xor in 1u8..=255) {
        let mut frame = msg.encode_frame();
        let idx = pos as usize % frame.len();
        frame[idx] ^= xor;
        match Message::decode_frame(&frame) {
            Err(_) => {}
            Ok(m) => {
                let _ = m.encode_frame();
            }
        }
    }

    /// Random garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Message::decode_frame(&bytes);
    }

    /// Garbage behind a valid header never panics either — this is the path
    /// a network server actually feeds the decoder.
    #[test]
    fn framed_garbage_never_panics(
        msg_type in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(b"EQ");
        frame.push(1); // legacy protocol version: no trace field
        frame.push(msg_type);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let _ = Message::decode_frame(&frame);
    }

    /// Same for v2 headers, whose payload is preceded by the trace field.
    #[test]
    fn framed_garbage_v2_never_panics(
        msg_type in any::<u8>(),
        trace in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + TRACE_FIELD_LEN + payload.len());
        frame.extend_from_slice(b"EQ");
        frame.push(V2_PROTOCOL_VERSION);
        frame.push(msg_type);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&trace.to_le_bytes());
        frame.extend_from_slice(&payload);
        let _ = Message::decode_frame(&frame);
    }

    /// Any trace id — including 0 — survives the frame header on any
    /// message, and the payload decodes identically to an untraced frame.
    #[test]
    fn trace_id_propagates_on_any_message(msg in arb_message(), trace in any::<u64>()) {
        let frame = msg.encode_frame_traced(trace);
        prop_assert_eq!(frame.len(), msg.frame_len());
        let (back, got_trace, version) =
            Message::decode_frame_full(&frame).expect("decode traced frame");
        prop_assert_eq!(got_trace, trace);
        prop_assert_eq!(version, PROTOCOL_VERSION);
        // Compare re-encodings: WireError codes canonicalize on decode.
        prop_assert_eq!(back.encode_frame_traced(trace), frame);
    }

    /// A v1 peer's frames (no trace field) still decode, report trace 0,
    /// and re-encode byte-identically as v1 — the compat contract.
    #[test]
    fn v1_frames_still_served(msg in arb_message()) {
        let frame = msg.encode_frame_v(LEGACY_PROTOCOL_VERSION, 0);
        // Answer payloads shrink in v1 (telemetry fields dropped), so the
        // exact-length check only applies to the other message kinds. A v1
        // frame drops all the post-header fields (trace, request id,
        // checksum) that `frame_len` budgets for the current version.
        if !matches!(msg, Message::Answer(_)) {
            prop_assert_eq!(frame.len(), msg.frame_len() - FRAME_EXTRA_LEN);
        }
        let (back, trace, version) =
            Message::decode_frame_full(&frame).expect("decode v1 frame");
        prop_assert_eq!(trace, 0, "v1 frames carry no trace id");
        prop_assert_eq!(version, LEGACY_PROTOCOL_VERSION);
        prop_assert_eq!(back.encode_frame_v(LEGACY_PROTOCOL_VERSION, 0), frame);
    }

    /// Any valid db id rides a v4 frame unchanged, and the frame length is
    /// invariant in the id (fixed-width field — ids are not length-leaked).
    #[test]
    fn db_id_roundtrips_on_any_message(
        msg in arb_message(),
        db in "[a-z][a-z0-9._-]{0,62}",
        trace in any::<u64>(),
        req_id in any::<u64>(),
    ) {
        let frame = msg.encode_frame_db(PROTOCOL_VERSION, trace, req_id, &db).unwrap();
        let bare = msg.encode_frame_db(PROTOCOL_VERSION, trace, req_id, "").unwrap();
        prop_assert_eq!(frame.len(), bare.len(), "db id must not change frame length");
        let d = Message::decode_frame_ext(&frame).expect("decode db frame");
        prop_assert_eq!(d.db, db);
        prop_assert_eq!(d.trace, trace);
        prop_assert_eq!(d.req_id, req_id);
    }

    /// Single-byte corruption of a v4 frame — including within the db-id
    /// field — never panics the decoder.
    #[test]
    fn db_frame_corruption_never_panics(
        msg in arb_message(),
        db in "[a-z][a-z0-9._-]{0,62}",
        pos in any::<u32>(),
        xor in 1u8..=255,
    ) {
        let mut frame = msg.encode_frame_db(PROTOCOL_VERSION, 7, 9, &db).unwrap();
        let idx = pos as usize % frame.len();
        frame[idx] ^= xor;
        match Message::decode_frame(&frame) {
            Err(_) => {}
            Ok(m) => {
                let _ = m.encode_frame();
            }
        }
    }

    /// Arbitrary bytes in the db-id field — oversized length byte, nonzero
    /// padding, non-UTF-8 — behind a *valid* checksum always yield a typed
    /// error or a clean decode, never a panic. (The CRC is recomputed so
    /// corruption reaches the db-id validator instead of tripping the
    /// checksum first.)
    #[test]
    fn garbage_db_field_is_typed_not_a_panic(
        msg in arb_message(),
        field in proptest::collection::vec(any::<u8>(), DB_ID_FIELD_LEN),
    ) {
        let mut frame = msg.encode_frame_db(PROTOCOL_VERSION, 1, 2, "x").unwrap();
        let db_pos = FRAME_HEADER_LEN + TRACE_FIELD_LEN + REQ_ID_FIELD_LEN + CHECKSUM_FIELD_LEN;
        frame[db_pos..db_pos + DB_ID_FIELD_LEN].copy_from_slice(&field);
        let crc_pos = FRAME_HEADER_LEN + TRACE_FIELD_LEN + REQ_ID_FIELD_LEN;
        let crc = crc32(&[&frame[..crc_pos], &frame[crc_pos + CHECKSUM_FIELD_LEN..]]);
        frame[crc_pos..crc_pos + CHECKSUM_FIELD_LEN].copy_from_slice(&crc.to_le_bytes());
        match Message::decode_frame_ext(&frame) {
            Err(CodecError::DbId(_)) | Ok(_) => {}
            Err(e) => prop_assert!(false, "expected DbId error or clean decode, got {e:?}"),
        }
    }

    /// Single-byte corruption of a traced frame — including within the
    /// trace field itself — never panics the decoder.
    #[test]
    fn traced_corruption_never_panics(
        msg in arb_message(),
        trace in any::<u64>(),
        pos in any::<u32>(),
        xor in 1u8..=255,
    ) {
        let mut frame = msg.encode_frame_traced(trace);
        let idx = pos as usize % frame.len();
        frame[idx] ^= xor;
        match Message::decode_frame(&frame) {
            Err(_) => {}
            Ok(m) => {
                let _ = m.encode_frame();
            }
        }
    }
}

/// Decoded intervals always satisfy the `lo < hi` invariant, so downstream
/// `Interval` code can rely on it even on attacker-supplied frames.
#[test]
fn decoded_intervals_uphold_invariant() {
    // v1 frame = header + varint(lo) + varint(hi); with lo=3, hi=9 both
    // varints are single bytes, so swapping them fabricates the inverted
    // interval (9, 3) that the constructor itself would refuse to build.
    // (v1 carries no checksum, so the swap reaches the interval decoder
    // instead of tripping the v3 CRC first.)
    let mut frame = Message::InsertionSlotReq(exq_index::dsi::Interval::new(3, 9))
        .encode_frame_v(LEGACY_PROTOCOL_VERSION, 0);
    let payload = FRAME_HEADER_LEN;
    frame.swap(payload, payload + 1);
    match Message::decode_frame(&frame) {
        Err(e) => assert!(matches!(e, CodecError::Invalid(_)), "got {e:?}"),
        Ok(m) => panic!("inverted interval decoded: {m:?}"),
    }
}
