//! Chaos suite: the fault-tolerance layer under seeded fault injection.
//!
//! The contract being enforced, at every seed and fault rate:
//!
//! * a query either returns the **bit-identical** fault-free answer or a
//!   typed [`CoreError`] once the retry budget is spent — never a panic,
//!   hang, or silently different answer;
//! * a retried mutation is applied **exactly once** (the server replay
//!   table dedupes replays whose original reply was lost);
//! * a saturated server answers `Busy` within the deadline instead of
//!   queueing unboundedly.

use exq_core::codec::Message;
use exq_core::constraints::SecurityConstraint;
use exq_core::fault::{ChaosProxy, FaultConfig, FaultTransport, ProxyFaults};
use exq_core::retry::{Retry, RetryConfig};
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::transport::{serve, InProcess, ServeConfig, TcpTransport, Transport};
use exq_core::{Client, CoreError, Server};
use exq_xml::Document;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

fn hospital(patients: usize) -> Document {
    let mut xml = String::from("<hospital>");
    let diseases = ["flu", "measles", "leukemia", "diarrhea", "asthma"];
    for i in 0..patients {
        let age = 20 + (i * 7) % 60;
        let coverage = 1000 * (1 + (i * 13) % 900);
        xml.push_str(&format!(
            "<patient id=\"{i}\"><pname>P{i}</pname><SSN>{:06}</SSN><age>{age}</age>\
             <treat><disease>{}</disease><doctor>D{}</doctor></treat>\
             <insurance><policy coverage=\"{coverage}\">{:05}</policy></insurance>\
             </patient>",
            100000 + i * 37,
            diseases[i % diseases.len()],
            (i / 2) % 5,
            10000 + i * 11,
        ));
    }
    xml.push_str("</hospital>");
    Document::parse(&xml).unwrap()
}

fn constraints() -> Vec<SecurityConstraint> {
    [
        "//insurance",
        "//patient:(/pname, /SSN)",
        "//treat:(/disease, /doctor)",
    ]
    .iter()
    .map(|s| SecurityConstraint::parse(s).unwrap())
    .collect()
}

fn hosted(patients: usize) -> (Client, Server) {
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&hospital(patients), &constraints(), SchemeKind::Opt, 23)
        .unwrap()
        .split()
}

const QUERIES: &[&str] = &[
    "//patient",
    "//patient/pname",
    "//patient[age = 27]/SSN",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//patient[.//policy/@coverage > 500000]/pname",
    "//treat[disease = 'leukemia']/doctor",
    "//nosuchtag",
];

const SEEDS: &[u64] = &[1, 7, 23, 911];

/// Replays the equivalence queries through `Retry<FaultTransport<InProcess>>`
/// at several seeds and fault rates. Completed answers must be bit-identical
/// to the fault-free run; failures must be typed errors.
#[test]
fn queries_survive_message_level_faults_bit_identically() {
    let (client, server) = hosted(24);

    // Fault-free reference results.
    let mut reference = Vec::new();
    for q in QUERIES {
        let mut link = InProcess::shared(&server);
        reference.push(client.run(&mut link, q).unwrap());
    }

    let mut total_faults = 0u64;
    let mut completed = 0u64;
    for &seed in SEEDS {
        for rate in [0.05, 0.15, 0.30] {
            let config = FaultConfig {
                seed: seed.wrapping_mul(1000) + (rate * 100.0) as u64,
                stall: Duration::from_millis(1),
                ..FaultConfig::uniform(seed, rate)
            };
            for (i, q) in QUERIES.iter().enumerate() {
                let faulty = FaultTransport::new(InProcess::shared(&server), config.clone());
                let mut link = Retry::new(
                    faulty,
                    RetryConfig {
                        max_attempts: 6,
                        base_backoff: Duration::from_millis(1),
                        max_backoff: Duration::from_millis(4),
                        jitter_seed: seed,
                        ping_before_retry: false,
                    },
                );
                match client.run(&mut link, q) {
                    Ok((_, resp, post)) => {
                        let (_, ref_resp, ref_post) = &reference[i];
                        assert_eq!(
                            resp.pruned_xml, ref_resp.pruned_xml,
                            "pruned_xml diverged for {q} at seed {seed} rate {rate}"
                        );
                        assert_eq!(
                            resp.blocks, ref_resp.blocks,
                            "block set diverged for {q} at seed {seed} rate {rate}"
                        );
                        assert_eq!(
                            post.results, ref_post.results,
                            "results diverged for {q} at seed {seed} rate {rate}"
                        );
                        completed += 1;
                    }
                    // Budget exhausted: must be a typed transient error, not
                    // a query/decrypt failure (those would mean a corrupted
                    // frame slipped through as a wrong answer).
                    Err(e) => assert!(
                        matches!(e, CoreError::Transport(_) | CoreError::Codec(_)),
                        "unexpected error class for {q} at seed {seed} rate {rate}: {e:?}"
                    ),
                }
                total_faults += link.into_inner().tally().total();
            }
        }
    }
    assert!(
        total_faults > 50,
        "chaos schedule injected too few faults ({total_faults}) to mean anything"
    );
    assert!(
        completed > 0,
        "no query ever completed under faults — retry layer is not recovering"
    );
}

/// Replayed mutations apply exactly once: a second `ApplyInsert` carrying
/// the same request id (a replay after a lost reply) is answered from the
/// server's ledger, not re-applied.
#[test]
fn replayed_mutation_applies_exactly_once() {
    let (mut client, mut server) = hosted(4);
    let record = "<patient><pname>Zoe</pname><SSN>112233</SSN><age>29</age></patient>";

    // Prepare a delta by hand so we control the frames.
    let (parent, slot, delta) = {
        let mut link = InProcess::exclusive(&mut server);
        let sq = client.translate("/hospital").unwrap().server_query.unwrap();
        let parent = link.locate(&sq).unwrap()[0];
        let slot = link.insertion_slot(parent).unwrap();
        let delta = client.prepare_insert(&slot, record, 5).unwrap();
        (parent, slot, delta)
    };
    let _ = (parent, slot);

    let count = |client: &Client, server: &Server| {
        let mut link = InProcess::shared(server);
        client
            .run(&mut link, "//patient/pname")
            .unwrap()
            .2
            .results
            .len()
    };
    let before = count(&client, &server);

    let mut link = InProcess::exclusive(&mut server);
    // First apply, under request id 42.
    link.set_next_request_id(42);
    assert_eq!(
        link.roundtrip(&Message::ApplyInsert(delta.clone()))
            .unwrap(),
        Message::InsertOk
    );
    // The reply was "lost"; the client replays with the same id.
    link.set_next_request_id(42);
    assert_eq!(
        link.roundtrip(&Message::ApplyInsert(delta.clone()))
            .unwrap(),
        Message::InsertOk
    );
    drop(link);
    assert_eq!(
        count(&client, &server),
        before + 1,
        "replayed insert must apply exactly once"
    );

    // Control: the same frame under a *fresh* id is a genuinely new
    // mutation and does apply again — the id, not the payload, is the key.
    let slot2 = {
        let mut link = InProcess::exclusive(&mut server);
        let sq = client.translate("/hospital").unwrap().server_query.unwrap();
        let parent = link.locate(&sq).unwrap()[0];
        link.insertion_slot(parent).unwrap()
    };
    let delta2 = client.prepare_insert(&slot2, record, 6).unwrap();
    let mut link = InProcess::exclusive(&mut server);
    link.set_next_request_id(43);
    link.roundtrip(&Message::ApplyInsert(delta2)).unwrap();
    drop(link);
    assert_eq!(count(&client, &server), before + 2);
}

/// End-to-end at-most-once under seeded response loss: every logical insert
/// that reports success exists exactly once, even though replies were
/// dropped and the retry layer replayed mutations.
#[test]
fn inserts_through_faulty_link_are_never_double_applied() {
    let (mut client, mut server) = hosted(4);
    let before = {
        let mut link = InProcess::shared(&server);
        client.run(&mut link, "//patient").unwrap().2.results.len()
    };

    let attempts = 6u32;
    let mut ok = 0usize;
    let mut dropped_responses = 0u64;
    for i in 0..attempts {
        let faulty = FaultTransport::new(
            InProcess::exclusive(&mut server),
            FaultConfig {
                seed: 0xFEED + i as u64,
                drop_request_rate: 0.10,
                drop_response_rate: 0.25,
                corrupt_rate: 0.0,
                stall_rate: 0.0,
                stall: Duration::ZERO,
            },
        );
        let mut link = Retry::new(
            faulty,
            RetryConfig {
                max_attempts: 8,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter_seed: i as u64,
                ping_before_retry: false,
            },
        );
        let record =
            format!("<patient><pname>N{i}</pname><SSN>90{i:04}</SSN><age>3{i}</age></patient>");
        if client
            .insert_via(&mut link, "/hospital", &record, 100 + i as u64)
            .is_ok()
        {
            ok += 1;
        }
        dropped_responses += link.into_inner().tally().dropped_responses;
    }
    let after = {
        let mut link = InProcess::shared(&server);
        client.run(&mut link, "//patient").unwrap().2.results.len()
    };
    // Replies were genuinely lost after delivery (the dangerous case) …
    assert!(
        dropped_responses > 0,
        "schedule never exercised the lost-reply path"
    );
    // … yet the database grew by exactly the number of successful logical
    // inserts: nothing doubled, nothing ghost-applied.
    assert_eq!(
        after - before,
        ok,
        "insert count diverged: {ok} logical successes but {} new records",
        after - before
    );
    assert_eq!(
        ok as u32, attempts,
        "retry budget should recover every insert"
    );
}

/// The same bit-identical contract over a real socket, with the chaos proxy
/// cutting, corrupting, and stalling the byte stream.
#[test]
fn queries_survive_socket_level_chaos() {
    let (client, server) = hosted(16);
    let mut reference = Vec::new();
    for q in QUERIES {
        let mut link = InProcess::shared(&server);
        reference.push(client.run(&mut link, q).unwrap());
    }

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(
        listener,
        Arc::new(RwLock::new(server)),
        ServeConfig {
            workers: 2,
            io_timeout: Duration::from_secs(2),
            cache_entries: Some(0),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    for &seed in &SEEDS[..3] {
        let proxy = ChaosProxy::start(
            handle.addr(),
            ProxyFaults {
                seed,
                cut_rate: 0.05,
                corrupt_rate: 0.05,
                stall_rate: 0.10,
                stall: Duration::from_millis(1),
            },
        )
        .unwrap();
        let tcp = TcpTransport::connect_default(proxy.addr()).unwrap();
        let mut link = Retry::new(
            tcp,
            RetryConfig {
                max_attempts: 8,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
                jitter_seed: seed,
                ping_before_retry: true,
            },
        );
        for (i, q) in QUERIES.iter().enumerate() {
            match client.run(&mut link, q) {
                Ok((_, resp, post)) => {
                    let (_, ref_resp, ref_post) = &reference[i];
                    assert_eq!(resp.pruned_xml, ref_resp.pruned_xml, "{q} @ seed {seed}");
                    assert_eq!(resp.blocks, ref_resp.blocks, "{q} @ seed {seed}");
                    assert_eq!(post.results, ref_post.results, "{q} @ seed {seed}");
                }
                Err(e) => assert!(
                    matches!(e, CoreError::Transport(_) | CoreError::Codec(_)),
                    "unexpected error class for {q} at seed {seed}: {e:?}"
                ),
            }
        }
        proxy.shutdown();
    }
    handle.shutdown();
}

/// Serve → kill → restart on a new port → re-point the proxy → the same
/// client transport reconnects and answers bit-identically: the mid-session
/// reconnect path, end to end.
#[test]
fn client_survives_server_restart_via_reconnect() {
    let (client, server) = hosted(8);
    let reference = {
        let mut link = InProcess::shared(&server);
        client.run(&mut link, "//patient/pname").unwrap()
    };
    let bytes = server.save_bytes().unwrap();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(
        listener,
        Arc::new(RwLock::new(server)),
        ServeConfig::default(),
    )
    .unwrap();
    // A transparent proxy gives the client a stable address across the
    // server restart (the restarted listener lands on a fresh port).
    let proxy = ChaosProxy::start(handle.addr(), ProxyFaults::none(1)).unwrap();

    let tcp = TcpTransport::connect_default(proxy.addr()).unwrap();
    let mut link = Retry::new(
        tcp,
        RetryConfig {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 3,
            ping_before_retry: true,
        },
    );
    let (_, resp, post) = client.run(&mut link, "//patient/pname").unwrap();
    assert_eq!(post.results, reference.2.results);
    assert_eq!(resp.pruned_xml, reference.1.pruned_xml);

    // Kill the server; the link is now talking to a corpse.
    handle.shutdown();
    // Restart from the persisted artifact on a fresh port, re-point the
    // proxy, and the *same* client link recovers mid-session.
    let restarted = Server::load_bytes(&bytes).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle2 = serve(
        listener,
        Arc::new(RwLock::new(restarted)),
        ServeConfig::default(),
    )
    .unwrap();
    proxy.set_upstream(handle2.addr());

    let (_, resp2, post2) = client.run(&mut link, "//patient/pname").unwrap();
    assert_eq!(
        post2.results, reference.2.results,
        "post-restart answer diverged"
    );
    assert_eq!(resp2.pruned_xml, reference.1.pruned_xml);

    proxy.shutdown();
    handle2.shutdown();
}

/// Under `max_inflight` saturation (a writer hogging the server), requests
/// are answered `Busy` within the deadline instead of queueing unboundedly,
/// and liveness pings still answer instantly.
#[test]
fn saturated_server_sheds_busy_within_deadline() {
    let (client, server) = hosted(8);
    let sq = client
        .translate("//patient/pname")
        .unwrap()
        .server_query
        .unwrap();
    let server = Arc::new(RwLock::new(server));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let deadline = Duration::from_millis(60);
    let handle = serve(
        listener,
        Arc::clone(&server),
        ServeConfig {
            // One worker per live connection (pinger + 4 clients): the pool
            // must not be the bottleneck — admission control is under test.
            workers: 8,
            max_inflight: 1,
            deadline,
            retry_after: Duration::from_millis(10),
            cache_entries: Some(0),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Saturate: hold the write lock so every admitted query stalls on the
    // read lock until its deadline.
    let guard = match server.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };

    // Liveness probes bypass admission and the lock entirely.
    let mut pinger = TcpTransport::connect_default(handle.addr()).unwrap();
    let rtt = pinger.ping().unwrap();
    assert!(rtt < deadline, "ping should not queue behind the writer");

    // Fire concurrent queries; each must come back Busy (v3 peers get the
    // typed frame) within deadline + generous slack — not hang.
    let mut clients: Vec<_> = (0..4)
        .map(|_| TcpTransport::connect_default(handle.addr()).unwrap())
        .collect();
    let started = Instant::now();
    let mut busy = 0;
    for link in &mut clients {
        match link.roundtrip(&Message::Query(sq.clone())).unwrap() {
            Message::Busy { retry_after_ms } => {
                assert!(retry_after_ms > 0);
                busy += 1;
            }
            other => panic!("expected Busy under saturation, got {other:?}"),
        }
    }
    let elapsed = started.elapsed();
    assert_eq!(busy, 4);
    assert!(
        elapsed < deadline * 4 + Duration::from_secs(2),
        "Busy replies took {elapsed:?} — queueing instead of shedding"
    );

    // Release the writer: the same links now get real answers.
    drop(guard);
    for link in &mut clients {
        match link.roundtrip(&Message::Query(sq.clone())).unwrap() {
            Message::Answer(_) => {}
            other => panic!("expected Answer after release, got {other:?}"),
        }
    }
    handle.shutdown();
}

/// A retrying client rides through a transient `Busy` phase to the real
/// answer once the server frees up.
#[test]
fn retry_layer_waits_out_busy_phase() {
    let (client, server) = hosted(8);
    let reference = {
        let mut link = InProcess::shared(&server);
        client.run(&mut link, "//patient/pname").unwrap().2.results
    };
    let server = Arc::new(RwLock::new(server));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(
        listener,
        Arc::clone(&server),
        ServeConfig {
            max_inflight: 1,
            deadline: Duration::from_millis(30),
            retry_after: Duration::from_millis(20),
            cache_entries: Some(0),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // A writer thread hogs the server briefly; it signals once it holds
    // the lock so the client's first attempt is guaranteed to land in the
    // busy phase.
    let (locked_tx, locked_rx) = std::sync::mpsc::channel();
    let writer_server = Arc::clone(&server);
    let unlocker = std::thread::spawn(move || {
        let guard = match writer_server.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        locked_tx.send(()).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        drop(guard);
    });
    locked_rx.recv().unwrap();

    let tcp = TcpTransport::connect_default(handle.addr()).unwrap();
    let mut link = Retry::new(
        tcp,
        RetryConfig {
            max_attempts: 10,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 5,
            ping_before_retry: false,
        },
    );
    let (_, _, post) = client.run(&mut link, "//patient/pname").unwrap();
    assert_eq!(post.results, reference);
    assert!(
        link.retry_stats().busy >= 1,
        "expected at least one Busy before the answer: {:?}",
        link.retry_stats()
    );
    unlocker.join().unwrap();
    handle.shutdown();
}
