//! Update support (the paper's future-work item #3): inserted records are
//! queryable under the same security policy; deleted records vanish.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::{Client, Server};
use exq_xml::Document;

fn hosted(kind: SchemeKind) -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, kind, 77)
        .unwrap()
        .split()
}

const NEW_PATIENT: &str = r#"<patient><pname>Zoe</pname><SSN>112233</SSN><age>29</age>
    <insurance><policy coverage="7500">55555</policy></insurance></patient>"#;

#[test]
fn insert_makes_record_queryable() {
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    client
        .insert(&mut server, "/hospital", NEW_PATIENT, 9)
        .unwrap();

    // Structural query finds three patients now.
    let out = client.query(&server, "//patient/age").unwrap();
    assert_eq!(out.results.len(), 3);

    // The inserted encrypted association is retrievable by value.
    let out = client
        .query(&server, "//patient[pname = 'Zoe']/age")
        .unwrap();
    assert_eq!(out.results, ["<age>29</age>"]);

    // Value predicate over the inserted numeric attribute.
    let out = client
        .query(&server, "//patient[.//policy/@coverage = 7500]/age")
        .unwrap();
    assert_eq!(out.results, ["<age>29</age>"]);
}

#[test]
fn insert_respects_encryption_policy() {
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    let delta = client
        .insert(&mut server, "/hospital", NEW_PATIENT, 9)
        .unwrap();
    // The policy encrypts insurance (node-type SC) and one of pname/SSN.
    assert!(!delta.blocks.is_empty());
    let visible = server.visible_xml();
    assert!(!visible.contains("55555"), "insurance value leaked");
    assert!(!visible.contains("7500"), "coverage leaked");
    assert!(
        !visible.contains("Zoe") || !visible.contains("112233"),
        "pname–SSN association leaked"
    );
    // Fragment annotations must not leak into the visible doc.
    assert!(!visible.contains("_exq_iv"));
}

#[test]
fn multiple_inserts() {
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    for i in 0..5 {
        let rec = format!(
            "<patient><pname>P{i}</pname><SSN>90000{i}</SSN><age>{}</age></patient>",
            30 + i
        );
        client
            .insert(&mut server, "/hospital", &rec, 100 + i)
            .unwrap();
    }
    let out = client.query(&server, "//patient").unwrap();
    assert_eq!(out.results.len(), 7);
    let out = client
        .query(&server, "//patient[pname = 'P3']/age")
        .unwrap();
    assert_eq!(out.results, ["<age>33</age>"]);
}

#[test]
fn many_sequential_inserts_do_not_exhaust_the_slot() {
    // Regression: naive slot allocation halved the parent's tail gap per
    // insert and died after ~15 records; budgeted strides must sustain far
    // more.
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    for i in 0..100 {
        let rec = format!("<patient><pname>N{i}</pname><SSN>5{i:05}</SSN><age>33</age></patient>");
        client
            .insert(&mut server, "/hospital", &rec, 500 + i)
            .unwrap_or_else(|e| panic!("insert {i} failed: {e}"));
    }
    let out = client.query(&server, "//patient").unwrap();
    assert_eq!(out.results.len(), 102);
    let out = client
        .query(&server, "//patient[pname = 'N73']/SSN")
        .unwrap();
    assert_eq!(out.results, ["<SSN>500073</SSN>"]);
}

#[test]
fn delete_removes_record() {
    let (client, mut server) = hosted(SchemeKind::Opt);
    let outcome = client.delete(&mut server, "//patient[age = 40]").unwrap();
    assert_eq!(outcome.deleted, 1);
    assert_eq!(outcome.skipped_in_block, 0);
    let out = client.query(&server, "//patient/age").unwrap();
    assert_eq!(out.results, ["<age>35</age>"]);
    // Matt's SSN is gone entirely.
    let out = client.query(&server, "//SSN").unwrap();
    assert_eq!(out.results.len(), 1);
}

#[test]
fn delete_then_insert_roundtrip() {
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    client.delete(&mut server, "//patient[age = 35]").unwrap();
    client
        .insert(&mut server, "/hospital", NEW_PATIENT, 5)
        .unwrap();
    let out = client.query(&server, "//patient/pname").unwrap();
    assert_eq!(out.results.len(), 2);
    let out = client
        .query(&server, "//patient[pname = 'Zoe']/SSN")
        .unwrap();
    assert_eq!(out.results, ["<SSN>112233</SSN>"]);
}

#[test]
fn delete_inside_block_is_refused() {
    let (client, mut server) = hosted(SchemeKind::Opt);
    // policy nodes live inside insurance blocks.
    let outcome = client.delete(&mut server, "//policy").unwrap();
    assert_eq!(outcome.deleted, 0);
    assert!(outcome.skipped_in_block >= 1);
}

#[test]
fn insert_under_missing_parent_fails() {
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    assert!(client
        .insert(&mut server, "//clinic", NEW_PATIENT, 1)
        .is_err());
}

#[test]
fn top_scheme_rejects_insert() {
    let (mut client, mut server) = hosted(SchemeKind::Top);
    // Under `top`, the root is inside the single block: no visible parent.
    assert!(client
        .insert(&mut server, "/hospital", NEW_PATIENT, 1)
        .is_err());
}

#[test]
fn insert_with_novel_attribute_values() {
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    // A brand-new pname not in the original OPESS domain.
    let rec = "<patient><pname>Aaaaron</pname><SSN>424242</SSN><age>50</age></patient>";
    client.insert(&mut server, "/hospital", rec, 3).unwrap();
    let out = client
        .query(&server, "//patient[pname = 'Aaaaron']/SSN")
        .unwrap();
    assert_eq!(out.results, ["<SSN>424242</SSN>"]);
}

#[test]
fn aggregate_sees_inserted_values() {
    use exq_core::aggregate::Aggregate;
    let (mut client, mut server) = hosted(SchemeKind::Opt);
    client
        .insert(&mut server, "/hospital", NEW_PATIENT, 9)
        .unwrap();
    let min = client
        .aggregate(&server, "//policy/@coverage", Aggregate::Min)
        .unwrap();
    assert_eq!(min.value.as_deref(), Some("5000"));
    let count = client
        .aggregate(&server, "//patient", Aggregate::Count)
        .unwrap();
    assert_eq!(count.value.as_deref(), Some("3"));
}
