//! Serial vs. parallel equivalence: the threaded hot path (client block
//! decryption, server candidate filtering, witness collection, response
//! assembly) must be **bit-for-bit identical** to the serial path at every
//! thread count — same `results`, same `pruned_xml` bytes, same block sets.
//!
//! This is the contract that makes `--threads` purely a performance knob.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::transport::InProcess;
use exq_core::{Client, Server};
use exq_xml::Document;

const THREADS: &[usize] = &[1, 2, 8];

/// A hospital document large enough that every parallel stage actually
/// fans out (many patients → many anchor matches, blocks, and candidates).
fn big_hospital(patients: usize) -> Document {
    let mut xml = String::from("<hospital>");
    let diseases = ["flu", "measles", "leukemia", "diarrhea", "asthma"];
    let doctors = ["Smith", "Walker", "Brown", "Jones", "Lee"];
    for i in 0..patients {
        let age = 20 + (i * 7) % 60;
        let coverage = 1000 * (1 + (i * 13) % 900);
        xml.push_str(&format!(
            "<patient id=\"{i}\"><pname>P{i}</pname><SSN>{:06}</SSN><age>{age}</age>\
             <treat><disease>{}</disease><doctor>{}</doctor></treat>\
             <insurance><policy coverage=\"{coverage}\">{:05}</policy></insurance>\
             </patient>",
            100000 + i * 37,
            diseases[i % diseases.len()],
            doctors[(i / 2) % doctors.len()],
            10000 + i * 11,
        ));
    }
    xml.push_str("</hospital>");
    Document::parse(&xml).unwrap()
}

fn constraints() -> Vec<SecurityConstraint> {
    [
        "//insurance",
        "//patient:(/pname, /SSN)",
        "//treat:(/disease, /doctor)",
    ]
    .iter()
    .map(|s| SecurityConstraint::parse(s).unwrap())
    .collect()
}

fn hosted() -> (Client, Server) {
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&big_hospital(40), &constraints(), SchemeKind::Opt, 23)
        .unwrap()
        .split()
}

const QUERIES: &[&str] = &[
    "//patient",
    "//patient/pname",
    "//patient[age = 27]/SSN",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//patient[.//policy/@coverage > 500000]/pname",
    "//patient[age > 30 and .//disease = 'measles']",
    "//treat[disease = 'leukemia']/doctor",
    "//insurance/policy",
    "//nosuchtag",
];

/// Server responses are byte-identical at every thread count: the pruned
/// skeleton string, the exact block list (ids, nonces, ciphertexts), and
/// the translated answer all match the single-threaded reference.
#[test]
fn server_responses_are_thread_count_invariant() {
    let (client, mut server) = hosted();
    for q in QUERIES {
        let sq = match client.translate(q).unwrap().server_query {
            Some(sq) => sq,
            None => continue,
        };
        server.set_threads(1);
        let reference = server.answer(&sq).unwrap();
        for &t in THREADS {
            server.set_threads(t);
            let resp = server.answer(&sq).unwrap();
            assert_eq!(
                resp.pruned_xml, reference.pruned_xml,
                "pruned_xml diverged for {q} at {t} threads"
            );
            assert_eq!(
                resp.blocks, reference.blocks,
                "block set diverged for {q} at {t} threads"
            );
        }
    }
}

/// Client post-processing is result-identical at every thread count, and
/// the full client↔server round trip agrees with the serial reference.
#[test]
fn query_results_are_thread_count_invariant() {
    let (client, mut server) = hosted();
    for q in QUERIES {
        server.set_threads(1);
        let mut link = InProcess::shared(&server);
        let serial_client = client.clone().with_threads(1);
        let (_, _, reference) = serial_client.run(&mut link, q).unwrap();

        for &t in THREADS {
            server.set_threads(t);
            let mut link = InProcess::shared(&server);
            let threaded = client.clone().with_threads(t);
            let (_, resp, post) = threaded.run(&mut link, q).unwrap();
            assert_eq!(
                post.results, reference.results,
                "results diverged for {q} at {t} threads"
            );
            assert_eq!(
                post.blocks_decrypted, reference.blocks_decrypted,
                "decrypt count diverged for {q} at {t} threads"
            );
            // Blocks decrypt in any order but must be the same set the
            // serial run shipped (ids are unique per response).
            let mut ids: Vec<u32> = resp.blocks.iter().map(|b| b.id).collect();
            ids.sort_unstable();
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "duplicate block shipped for {q} at {t} threads"
            );
        }
    }
}

/// `explain` (anchor/survivor counts) and `locate` (update-path intervals)
/// also run on the parallel filter; they must not depend on thread count.
#[test]
fn explain_and_locate_are_thread_count_invariant() {
    let (client, mut server) = hosted();
    for q in ["//patient[age > 40]/pname", "//treat[disease = 'flu']"] {
        let sq = client.translate(q).unwrap().server_query.unwrap();
        server.set_threads(1);
        let ref_explain = format!("{:?}", server.explain(&sq));
        let ref_locate = server.locate(&sq);
        for &t in THREADS {
            server.set_threads(t);
            assert_eq!(format!("{:?}", server.explain(&sq)), ref_explain, "{q}@{t}");
            assert_eq!(server.locate(&sq), ref_locate, "{q}@{t}");
        }
    }
}

/// The export path (decrypt-everything) agrees across thread counts.
#[test]
fn export_is_thread_count_invariant() {
    let (client, server) = hosted();
    let reference = client
        .clone()
        .with_threads(1)
        .export(&server)
        .unwrap()
        .map(|d| d.to_xml());
    for &t in THREADS {
        let xml = client
            .clone()
            .with_threads(t)
            .export(&server)
            .unwrap()
            .map(|d| d.to_xml());
        assert_eq!(xml, reference, "export diverged at {t} threads");
    }
}
