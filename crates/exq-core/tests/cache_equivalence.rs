//! Cached vs. uncached equivalence: the server caches (response cache +
//! cross-query value-range cache) must be **bit-for-bit invisible** — same
//! `pruned_xml` bytes, same block sets, same client results — across cold
//! runs, warm (hit) runs, every thread count, and interleaved updates that
//! invalidate entries mid-stream.
//!
//! This is the contract that makes `--cache-entries` purely a performance
//! knob.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::transport::InProcess;
use exq_core::{Client, Server};
use exq_xml::Document;

const THREADS: &[usize] = &[1, 2, 8];

/// Same generator as the parallel-equivalence suite: large enough that
/// value predicates hit the range cache and answers ship several blocks.
fn big_hospital(patients: usize) -> Document {
    let mut xml = String::from("<hospital>");
    let diseases = ["flu", "measles", "leukemia", "diarrhea", "asthma"];
    let doctors = ["Smith", "Walker", "Brown", "Jones", "Lee"];
    for i in 0..patients {
        let age = 20 + (i * 7) % 60;
        let coverage = 1000 * (1 + (i * 13) % 900);
        xml.push_str(&format!(
            "<patient id=\"{i}\"><pname>P{i}</pname><SSN>{:06}</SSN><age>{age}</age>\
             <treat><disease>{}</disease><doctor>{}</doctor></treat>\
             <insurance><policy coverage=\"{coverage}\">{:05}</policy></insurance>\
             </patient>",
            100000 + i * 37,
            diseases[i % diseases.len()],
            doctors[(i / 2) % doctors.len()],
            10000 + i * 11,
        ));
    }
    xml.push_str("</hospital>");
    Document::parse(&xml).unwrap()
}

fn constraints() -> Vec<SecurityConstraint> {
    [
        "//insurance",
        "//patient:(/pname, /SSN)",
        "//treat:(/disease, /doctor)",
    ]
    .iter()
    .map(|s| SecurityConstraint::parse(s).unwrap())
    .collect()
}

/// Outsourcing is deterministic in (doc, constraints, scheme, seed), so two
/// calls produce identical client/server twins we can drive in lockstep.
fn hosted() -> (Client, Server) {
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&big_hospital(40), &constraints(), SchemeKind::Opt, 23)
        .unwrap()
        .split()
}

const QUERIES: &[&str] = &[
    "//patient",
    "//patient/pname",
    "//patient[age = 27]/SSN",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//patient[.//policy/@coverage > 500000]/pname",
    "//patient[age > 30 and .//disease = 'measles']",
    "//treat[disease = 'leukemia']/doctor",
    "//insurance/policy",
    "//nosuchtag",
];

fn record(i: usize) -> String {
    format!(
        "<patient><pname>New{i}</pname><SSN>{:06}</SSN><age>{}</age>\
         <treat><disease>flu</disease><doctor>Lee</doctor></treat></patient>",
        900000 + i,
        25 + i
    )
}

/// Cold-miss, warm-hit, and disabled answers are byte-identical for every
/// query, and the warm pass really is served from the cache.
#[test]
fn cached_answers_are_bit_identical_to_uncached() {
    let (client, mut server) = hosted();
    for q in QUERIES {
        let sq = match client.translate(q).unwrap().server_query {
            Some(sq) => sq,
            None => continue,
        };
        server.set_cache_entries(Some(0));
        let reference = server.answer(&sq).unwrap();

        server.set_cache_entries(Some(256));
        let cold = server.answer(&sq).unwrap();
        let hits_before = server.cache_stats().response_hits;
        let warm = server.answer(&sq).unwrap();
        assert!(
            server.cache_stats().response_hits > hits_before,
            "warm pass for {q} did not hit the response cache"
        );

        for (label, resp) in [("cold", &cold), ("warm", &warm)] {
            assert_eq!(
                resp.pruned_xml, reference.pruned_xml,
                "pruned_xml diverged for {q} ({label} cache)"
            );
            assert_eq!(
                resp.blocks, reference.blocks,
                "block set diverged for {q} ({label} cache)"
            );
        }
    }
}

/// Full client round trips agree between a cache-enabled and a cache-
/// disabled twin server, at every thread count, with every query run twice
/// so the second pass exercises the hit path.
#[test]
fn client_results_match_across_cache_and_threads() {
    for &t in THREADS {
        let (client, mut on) = hosted();
        let (_, mut off) = hosted();
        on.set_cache_entries(Some(256));
        off.set_cache_entries(Some(0));
        on.set_threads(t);
        off.set_threads(t);
        let client = client.with_threads(t);

        for _pass in 0..2 {
            for q in QUERIES {
                let mut link_on = InProcess::shared(&on);
                let mut link_off = InProcess::shared(&off);
                let (_, resp_on, post_on) = client.run(&mut link_on, q).unwrap();
                let (_, resp_off, post_off) = client.run(&mut link_off, q).unwrap();
                assert_eq!(
                    resp_on.pruned_xml, resp_off.pruned_xml,
                    "pruned_xml diverged for {q} at {t} threads"
                );
                assert_eq!(
                    resp_on.blocks, resp_off.blocks,
                    "block set diverged for {q} at {t} threads"
                );
                assert_eq!(
                    post_on.results, post_off.results,
                    "results diverged for {q} at {t} threads"
                );
            }
        }
        assert!(
            on.cache_stats().response_hits > 0,
            "second pass never hit the cache at {t} threads"
        );
    }
}

/// An insert between two identical queries must change the second answer:
/// the generation bump invalidates the cached response, at 1 and 8 threads.
#[test]
fn insert_invalidates_cached_answers() {
    for &t in [1usize, 8].iter() {
        let (mut client, mut server) = hosted();
        server.set_cache_entries(Some(256));
        server.set_threads(t);
        let client_t = client.clone().with_threads(t);

        let q = "//patient[.//disease = 'flu']/pname";
        let before = {
            let mut link = InProcess::shared(&server);
            // Twice: the second answer comes from the cache.
            client_t.run(&mut link, q).unwrap();
            client_t.run(&mut link, q).unwrap().2
        };
        assert!(!before.results.iter().any(|r| r.contains("New1")));

        client
            .insert(&mut server, "/hospital", &record(1), 77)
            .unwrap();

        let after = {
            let mut link = InProcess::shared(&server);
            client_t.run(&mut link, q).unwrap().2
        };
        assert!(
            after.results.iter().any(|r| r.contains("New1")),
            "insert invisible after cached query at {t} threads: {:?}",
            after.results
        );
        assert_eq!(after.results.len(), before.results.len() + 1);
    }
}

/// A delete between two identical queries must shrink the second answer,
/// and re-asked queries must not ship tombstoned blocks, at 1 and 8 threads.
#[test]
fn delete_invalidates_cached_answers() {
    for &t in [1usize, 8].iter() {
        let (client, mut server) = hosted();
        server.set_cache_entries(Some(256));
        server.set_threads(t);
        let client_t = client.clone().with_threads(t);

        let q = "//patient/pname";
        let before = {
            let mut link = InProcess::shared(&server);
            client_t.run(&mut link, q).unwrap();
            client_t.run(&mut link, q).unwrap().2
        };

        let out = client.delete(&mut server, "//patient[age = 27]").unwrap();
        assert!(out.deleted > 0, "delete matched nothing at {t} threads");

        let after = {
            let mut link = InProcess::shared(&server);
            client_t.run(&mut link, q).unwrap().2
        };
        assert_eq!(
            after.results.len(),
            before.results.len() - out.deleted,
            "delete invisible after cached query at {t} threads"
        );

        // Tombstoned blocks must not resurface from any cache layer: every
        // shipped block still exists on the server.
        let sq = client_t.translate(q).unwrap().server_query.unwrap();
        let resp = server.answer(&sq).unwrap();
        for b in &resp.blocks {
            assert!(
                server.fetch_block(b.id).unwrap().is_some(),
                "response shipped tombstoned block {} at {t} threads",
                b.id
            );
        }
    }
}

/// Lockstep soak: interleave queries with inserts and deletes; a cached
/// and an uncached twin must agree on every answer at every step.
#[test]
fn interleaved_updates_stay_equivalent() {
    let (mut client_on, mut on) = hosted();
    let (mut client_off, mut off) = hosted();
    on.set_cache_entries(Some(64));
    off.set_cache_entries(Some(0));

    let check_all = |on: &Server, off: &Server, client: &Client, round: usize| {
        for q in QUERIES {
            // Twice per round so the cached twin answers from the cache.
            for pass in 0..2 {
                let mut link_on = InProcess::shared(on);
                let mut link_off = InProcess::shared(off);
                let (_, resp_on, post_on) = client.run(&mut link_on, q).unwrap();
                let (_, resp_off, post_off) = client.run(&mut link_off, q).unwrap();
                assert_eq!(
                    resp_on.pruned_xml, resp_off.pruned_xml,
                    "pruned_xml diverged for {q} (round {round}, pass {pass})"
                );
                assert_eq!(resp_on.blocks, resp_off.blocks, "{q} round {round}");
                assert_eq!(post_on.results, post_off.results, "{q} round {round}");
            }
        }
    };

    check_all(&on, &off, &client_on, 0);

    for round in 1..=3 {
        // Twin clients are identical, so identical calls yield identical
        // deltas against identical servers.
        let rec = record(round);
        client_on
            .insert(&mut on, "/hospital", &rec, 100 + round as u64)
            .unwrap();
        client_off
            .insert(&mut off, "/hospital", &rec, 100 + round as u64)
            .unwrap();
        check_all(&on, &off, &client_on, round);
    }

    let d_on = client_on.delete(&mut on, "//patient[age = 26]").unwrap();
    let d_off = client_off.delete(&mut off, "//patient[age = 26]").unwrap();
    assert_eq!(d_on.deleted, d_off.deleted);
    assert!(d_on.deleted > 0, "soak delete matched nothing");
    check_all(&on, &off, &client_on, 4);

    let stats = on.cache_stats();
    assert!(
        stats.response_hits > 0,
        "soak never hit the cache: {stats:?}"
    );
    assert!(
        stats.generation >= 4,
        "updates did not bump the generation: {stats:?}"
    );
}
