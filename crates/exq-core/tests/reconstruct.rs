//! Client-side reconstruction edge cases (§6 splice step).
//!
//! Regression focus: a response whose `pruned_xml` is **empty** but that
//! still ships sealed blocks — the shape a fully-encrypted root produces —
//! must splice those blocks into a real document, not collapse to "no
//! answer". A truly empty response (no skeleton, no blocks) is the only
//! shape that reconstructs to nothing.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::wire::ServerResponse;
use exq_crypto::seal_block;
use exq_xml::Document;
use exq_xpath::Path;
use std::time::Duration;

const DOC: &str = r#"<hospital>
    <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age></patient>
    <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age></patient>
   </hospital>"#;

fn hosted(constraints: &[&str]) -> (exq_core::Client, exq_core::Server) {
    let doc = Document::parse(DOC).unwrap();
    let cs: Vec<SecurityConstraint> = constraints
        .iter()
        .map(|s| SecurityConstraint::parse(s).unwrap())
        .collect();
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 17)
        .unwrap()
        .split()
}

/// Empty pruned skeleton + a shipped root-level block: the block's content
/// must be spliced in and queried, not dropped.
#[test]
fn root_level_block_splices_into_empty_pruned_doc() {
    let (client, _server) = hosted(&["//patient:(/pname, /SSN)"]);

    // Seal the *entire* document as one block, as a fully-encrypted root
    // would ship it.
    let key = client.state().keys.block_key();
    let sealed = seal_block(&key, 42, [7u8; 12], DOC.as_bytes());
    let resp = ServerResponse {
        pruned_xml: String::new(),
        blocks: vec![std::sync::Arc::new(sealed)],
        translate_time: Duration::ZERO,
        process_time: Duration::ZERO,
        served_from_cache: false,
        spans: Vec::new(),
    };

    let post = client
        .post_process(&Path::parse("//patient/pname").unwrap(), &resp)
        .unwrap();
    assert_eq!(post.blocks_decrypted, 1);
    assert_eq!(
        post.results,
        ["<pname>Betty</pname>", "<pname>Matt</pname>"],
        "root-level block content must be reachable after reconstruction"
    );
}

/// Several root-level blocks splice in ascending block-id order, giving a
/// deterministic reconstructed document.
#[test]
fn multiple_root_blocks_splice_in_id_order() {
    let (client, _server) = hosted(&["//patient:(/pname, /SSN)"]);
    let key = client.state().keys.block_key();

    // Ship the two fragments in *descending* id order; reconstruction must
    // still order by block id, not arrival order.
    let b9 = seal_block(&key, 9, [1u8; 12], b"<patient><pname>Zoe</pname></patient>");
    let b3 = seal_block(&key, 3, [2u8; 12], b"<patient><pname>Al</pname></patient>");
    let resp = ServerResponse {
        pruned_xml: String::new(),
        blocks: vec![std::sync::Arc::new(b9), std::sync::Arc::new(b3)],
        translate_time: Duration::ZERO,
        process_time: Duration::ZERO,
        served_from_cache: false,
        spans: Vec::new(),
    };

    let post = client
        .post_process(&Path::parse("//pname").unwrap(), &resp)
        .unwrap();
    assert_eq!(
        post.results,
        ["<pname>Al</pname>", "<pname>Zoe</pname>"],
        "splice order must follow block ids"
    );
}

/// A response with no skeleton *and* no blocks is genuinely empty: no
/// results, nothing decrypted.
#[test]
fn truly_empty_response_yields_no_results() {
    let (client, _server) = hosted(&["//patient:(/pname, /SSN)"]);
    let resp = ServerResponse {
        pruned_xml: String::new(),
        blocks: Vec::new(),
        translate_time: Duration::ZERO,
        process_time: Duration::ZERO,
        served_from_cache: false,
        spans: Vec::new(),
    };
    let post = client
        .post_process(&Path::parse("//pname").unwrap(), &resp)
        .unwrap();
    assert!(post.results.is_empty());
    assert_eq!(post.blocks_decrypted, 0);
}

/// End-to-end: a constraint that encrypts the whole root still answers
/// every query correctly through the real pipeline.
#[test]
fn fully_encrypted_root_round_trips() {
    let (client, server) = hosted(&["//hospital"]);
    let mut link = exq_core::transport::InProcess::shared(&server);
    let (_, _, post) = client.run(&mut link, "//patient/pname").unwrap();
    assert_eq!(
        post.results,
        ["<pname>Betty</pname>", "<pname>Matt</pname>"]
    );

    let (_, _, post) = client.run(&mut link, "//patient[age = 40]/SSN").unwrap();
    assert_eq!(post.results, ["<SSN>276543</SSN>"]);

    // Export recovers the full plaintext even with nothing visible.
    let recovered = client.export(&server).unwrap().expect("export content");
    let xml = recovered.to_xml();
    for v in ["Betty", "763895", "Matt", "276543"] {
        assert!(xml.contains(v), "missing {v} in export");
    }
}
