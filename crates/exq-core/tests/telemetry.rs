//! Registry exactness under concurrency. The telemetry invariants the PR
//! pins down: counters never lose increments, a histogram's bucket counts
//! always sum to its observation count, and the wire/cache counters stay
//! exact when eight client threads hammer the TCP serve loop's `RwLock`'d
//! dispatch concurrently.
//!
//! The two traffic-generating tests live alone in this binary so registry
//! deltas are exactly this file's own doing (integration test binaries run
//! as separate processes).

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::telemetry;
use exq_core::transport::{serve, ServeConfig, TcpTransport};
use exq_core::{Client, Server};
use exq_xml::Document;
use std::net::TcpListener;
use std::sync::{Arc, RwLock};

#[test]
fn eight_thread_hammer_keeps_totals_exact() {
    const THREADS: usize = 8;
    const PER: u64 = 10_000;
    // Unique names: nothing else in this process touches them, so the
    // post-hammer totals are exact, not deltas.
    let c = telemetry::counter("test_hammer_total");
    let g = telemetry::gauge("test_hammer_gauge");
    let h = telemetry::histogram("test_hammer_ns");

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            s.spawn(move || {
                let c = telemetry::counter("test_hammer_total");
                let g = telemetry::gauge("test_hammer_gauge");
                let h = telemetry::histogram("test_hammer_ns");
                for i in 0..PER {
                    c.inc();
                    g.add(1);
                    g.add(-1);
                    // Spread observations over many octaves.
                    h.observe((t.wrapping_mul(PER) + i) % 1_048_576);
                }
            });
        }
    });

    assert_eq!(c.get(), THREADS as u64 * PER, "lost counter increments");
    assert_eq!(g.get(), 0, "gauge adds/subs must balance");
    assert_eq!(h.count(), THREADS as u64 * PER);
    assert_eq!(
        h.bucket_counts().iter().sum::<u64>(),
        h.count(),
        "bucket counts must sum to the observation count"
    );
    let expected_sum: u64 = (0..THREADS as u64)
        .flat_map(|t| (0..PER).map(move |i| (t.wrapping_mul(PER) + i) % 1_048_576))
        .sum();
    assert_eq!(h.sum_nanos(), expected_sum, "lost histogram sum nanos");
    // Quantiles are monotone and nonzero once observations exist.
    let p50 = h.quantile(0.50);
    let p99 = h.quantile(0.99);
    assert!(p50 <= p99);
    assert!(p99.as_nanos() > 0);

    // The hammered metrics show up in the Prometheus rendering.
    let text = telemetry::render();
    assert!(text.contains("# TYPE test_hammer_total counter"));
    assert!(text.contains("# TYPE test_hammer_ns histogram"));
    assert!(text.contains("test_hammer_ns_count"));
}

fn hosted() -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap()];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 7)
        .unwrap()
        .split()
}

#[test]
fn serve_loop_hammer_keeps_wire_and_cache_counters_exact() {
    const THREADS: usize = 8;
    const PER: usize = 25;
    let (client, mut server) = hosted();
    // Pin the cache on regardless of any ambient EXQ_CACHE setting, so
    // every query probes the response cache exactly once.
    server.set_cache_entries(Some(1024));
    let shared = Arc::new(RwLock::new(server));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(listener, shared, ServeConfig::default()).unwrap();
    let addr = handle.addr();
    let client = Arc::new(client);

    let requests = telemetry::counter("exq_wire_requests_total");
    let sent = telemetry::counter("exq_wire_bytes_sent_total");
    let received = telemetry::counter("exq_wire_bytes_received_total");
    let hits = telemetry::counter("exq_cache_response_hits_total");
    let misses = telemetry::counter("exq_cache_response_misses_total");
    let probe_hist = telemetry::histogram("exq_span_server_cache_probe");
    let (req0, sent0, recv0) = (requests.get(), sent.get(), received.get());
    let (hits0, misses0, probes0) = (hits.get(), misses.get(), probe_hist.count());

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let mut tcp = TcpTransport::connect_default(addr).unwrap();
                for _ in 0..PER {
                    let out = client
                        .query_via(&mut tcp, "//patient[pname = 'Betty']/age")
                        .unwrap();
                    assert_eq!(out.results, ["<age>35</age>"]);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    handle.shutdown();

    let total = (THREADS * PER) as u64;
    assert_eq!(requests.get() - req0, total, "one request frame per query");
    assert!(sent.get() > sent0 && received.get() > recv0);
    assert_eq!(
        (hits.get() - hits0) + (misses.get() - misses0),
        total,
        "every query probes the response cache exactly once"
    );
    assert!(
        hits.get() - hits0 > 0,
        "identical queries must hit the cache"
    );
    assert_eq!(
        probe_hist.count() - probes0,
        total,
        "one cache-probe span observation per query"
    );
    assert_eq!(
        probe_hist.bucket_counts().iter().sum::<u64>(),
        probe_hist.count(),
        "histogram invariant must survive concurrent serve-loop traffic"
    );
}
