//! End-to-end property test: for random small documents, random constraint
//! choices, and random queries, the secure pipeline returns exactly the
//! plaintext reference answer under every scheme.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_xml::Document;
use exq_xpath::{eval_document, Path};
use proptest::prelude::*;

/// Small random "records" documents: root r with 1–6 `rec` children, each
/// carrying a subset of fields with values from tiny domains (so value
/// predicates hit and miss).
#[derive(Debug, Clone)]
struct Rec {
    name: u8,
    code: u8,
    level: u8,
    with_extra: bool,
}

fn rec() -> impl Strategy<Value = Rec> {
    (0u8..4, 0u8..4, 0u8..5, any::<bool>()).prop_map(|(name, code, level, with_extra)| Rec {
        name,
        code,
        level,
        with_extra,
    })
}

fn build_doc(recs: &[Rec]) -> Document {
    let mut d = Document::new();
    let root = d.add_element(None, "r");
    for rc in recs {
        let p = d.add_element(Some(root), "rec");
        let name = d.add_element(Some(p), "name");
        d.add_text(name, &format!("N{}", rc.name));
        let code = d.add_element(Some(p), "code");
        d.add_text(code, &format!("{}", 100 + rc.code as u32));
        let level = d.add_element(Some(p), "level");
        d.add_text(level, &rc.level.to_string());
        if rc.with_extra {
            let extra = d.add_element(Some(p), "extra");
            let note = d.add_element(Some(extra), "note");
            d.add_text(note, "aux");
        }
    }
    d
}

fn constraint_sets() -> Vec<Vec<&'static str>> {
    vec![
        vec!["//rec:(/name, /code)"],
        vec!["//rec:(/name, /code)", "//rec:(/name, /level)"],
        vec!["//extra", "//rec:(/code, /level)"],
    ]
}

const QUERIES: &[&str] = &[
    "//rec/name",
    "//rec[code = 101]/level",
    "//rec[name = 'N2']/code",
    "//rec[level >= 3]/name",
    "//rec[extra]/name",
    "//rec[not(extra)]/code",
    "/r/rec[1]/name",
    "//rec[name = 'N0' or name = 'N1']/level",
    "//name | //level",
];

fn render(doc: &Document, n: exq_xml::NodeId) -> String {
    match doc.node(n).kind() {
        exq_xml::NodeKind::Element(_) => doc.node_to_xml(n),
        exq_xml::NodeKind::Attribute(_, v) => v.clone(),
        exq_xml::NodeKind::Text(t) => t.clone(),
    }
}

fn reference(doc: &Document, query: &str) -> Vec<String> {
    let paths = Path::parse_union(query).unwrap();
    let mut out: Vec<String> = exq_xpath::eval_union(doc, &paths)
        .into_iter()
        .map(|n| render(doc, n))
        .collect();
    let _ = eval_document; // (single-branch case covered by eval_union)
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn secure_pipeline_equals_reference(
        recs in proptest::collection::vec(rec(), 1..6),
        cs_idx in 0usize..3,
        seed in 0u64..1000,
        kind_idx in 0usize..4,
    ) {
        let doc = build_doc(&recs);
        let cs: Vec<SecurityConstraint> = constraint_sets()[cs_idx]
            .iter()
            .map(|s| SecurityConstraint::parse(s).unwrap())
            .collect();
        let kind = SchemeKind::ALL[kind_idx];
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &cs, kind, seed)
            .unwrap();
        prop_assert!(hosted.scheme.enforces(&doc, &cs));
        for q in QUERIES {
            let expected = reference(&doc, q);
            let mut got = hosted.query(q).unwrap().results;
            got.sort();
            got.dedup();
            prop_assert_eq!(&got, &expected, "mismatch for {} under {:?}", q, kind);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Persistence loaders never panic on arbitrary bytes.
    #[test]
    fn loaders_reject_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = exq_core::Server::load_bytes(&bytes);
        let _ = exq_core::Client::load_bytes(&bytes);
    }

    /// Loaders also survive corrupted-but-magic-prefixed inputs, in both
    /// the legacy (no checksum) and current (checksummed) formats.
    #[test]
    fn loaders_reject_corrupted_headers(tail in proptest::collection::vec(any::<u8>(), 0..200)) {
        for magic in [b"EXQSV1", b"EXQSV2"] {
            let mut s = magic.to_vec();
            s.extend_from_slice(&tail);
            let _ = exq_core::Server::load_bytes(&s);
        }
        for magic in [b"EXQCL1", b"EXQCL2"] {
            let mut c = magic.to_vec();
            c.extend_from_slice(&tail);
            let _ = exq_core::Client::load_bytes(&c);
        }
    }
}
