//! End-to-end property test: for random small documents, random constraint
//! choices, and random queries, the secure pipeline returns exactly the
//! plaintext reference answer under every scheme.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_xml::Document;
use exq_xpath::{eval_document, Path};
use proptest::prelude::*;

/// Small random "records" documents: root r with 1–6 `rec` children, each
/// carrying a subset of fields with values from tiny domains (so value
/// predicates hit and miss).
#[derive(Debug, Clone)]
struct Rec {
    name: u8,
    code: u8,
    level: u8,
    with_extra: bool,
}

fn rec() -> impl Strategy<Value = Rec> {
    (0u8..4, 0u8..4, 0u8..5, any::<bool>()).prop_map(|(name, code, level, with_extra)| Rec {
        name,
        code,
        level,
        with_extra,
    })
}

fn build_doc(recs: &[Rec]) -> Document {
    let mut d = Document::new();
    let root = d.add_element(None, "r");
    for rc in recs {
        let p = d.add_element(Some(root), "rec");
        let name = d.add_element(Some(p), "name");
        d.add_text(name, &format!("N{}", rc.name));
        let code = d.add_element(Some(p), "code");
        d.add_text(code, &format!("{}", 100 + rc.code as u32));
        let level = d.add_element(Some(p), "level");
        d.add_text(level, &rc.level.to_string());
        if rc.with_extra {
            let extra = d.add_element(Some(p), "extra");
            let note = d.add_element(Some(extra), "note");
            d.add_text(note, "aux");
        }
    }
    d
}

fn constraint_sets() -> Vec<Vec<&'static str>> {
    vec![
        vec!["//rec:(/name, /code)"],
        vec!["//rec:(/name, /code)", "//rec:(/name, /level)"],
        vec!["//extra", "//rec:(/code, /level)"],
    ]
}

const QUERIES: &[&str] = &[
    "//rec/name",
    "//rec[code = 101]/level",
    "//rec[name = 'N2']/code",
    "//rec[level >= 3]/name",
    "//rec[extra]/name",
    "//rec[not(extra)]/code",
    "/r/rec[1]/name",
    "//rec[name = 'N0' or name = 'N1']/level",
    "//name | //level",
];

fn render(doc: &Document, n: exq_xml::NodeId) -> String {
    match doc.node(n).kind() {
        exq_xml::NodeKind::Element(_) => doc.node_to_xml(n),
        exq_xml::NodeKind::Attribute(_, v) => v.clone(),
        exq_xml::NodeKind::Text(t) => t.clone(),
    }
}

fn reference(doc: &Document, query: &str) -> Vec<String> {
    let paths = Path::parse_union(query).unwrap();
    let mut out: Vec<String> = exq_xpath::eval_union(doc, &paths)
        .into_iter()
        .map(|n| render(doc, n))
        .collect();
    let _ = eval_document; // (single-branch case covered by eval_union)
    out.sort();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn secure_pipeline_equals_reference(
        recs in proptest::collection::vec(rec(), 1..6),
        cs_idx in 0usize..3,
        seed in 0u64..1000,
        kind_idx in 0usize..4,
    ) {
        let doc = build_doc(&recs);
        let cs: Vec<SecurityConstraint> = constraint_sets()[cs_idx]
            .iter()
            .map(|s| SecurityConstraint::parse(s).unwrap())
            .collect();
        let kind = SchemeKind::ALL[kind_idx];
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &cs, kind, seed)
            .unwrap();
        prop_assert!(hosted.scheme.enforces(&doc, &cs));
        for q in QUERIES {
            let expected = reference(&doc, q);
            let mut got = hosted.query(q).unwrap().results;
            got.sort();
            got.dedup();
            prop_assert_eq!(&got, &expected, "mismatch for {} under {:?}", q, kind);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Persistence loaders never panic on arbitrary bytes.
    #[test]
    fn loaders_reject_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = exq_core::Server::load_bytes(&bytes);
        let _ = exq_core::Client::load_bytes(&bytes);
    }

    /// Loaders also survive corrupted-but-magic-prefixed inputs, in both
    /// the legacy (no checksum) and current (checksummed) formats.
    #[test]
    fn loaders_reject_corrupted_headers(tail in proptest::collection::vec(any::<u8>(), 0..200)) {
        for magic in [b"EXQSV1", b"EXQSV2"] {
            let mut s = magic.to_vec();
            s.extend_from_slice(&tail);
            let _ = exq_core::Server::load_bytes(&s);
        }
        for magic in [b"EXQCL1", b"EXQCL2"] {
            let mut c = magic.to_vec();
            c.extend_from_slice(&tail);
            let _ = exq_core::Client::load_bytes(&c);
        }
    }
}

// ---------------------------------------------------------------------------
// Observability hardening: hostile db ids and the flight-recorder ring.
// ---------------------------------------------------------------------------

/// Splits one exposition line into `(series, value)` with quote-aware
/// scanning: whitespace inside a `{label="…"}` section (or escaped quotes
/// within it) must not terminate the series name.
fn split_series_value(line: &str) -> Option<(String, f64)> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ' ' if !in_quotes => {
                let (name, rest) = line.split_at(i);
                let value: f64 = rest
                    .trim()
                    .parse()
                    .ok()
                    .or_else(|| (rest.trim() == "+Inf").then_some(f64::INFINITY))?;
                return (!name.is_empty() && !in_quotes).then(|| (name.to_string(), value));
            }
            _ => {}
        }
    }
    None
}

/// Alphabet of label-hostile characters: quotes, backslashes, newlines,
/// braces, spaces, and multibyte text.
fn hostile_char(idx: u8) -> char {
    const ALPHABET: &[char] = &[
        '"', '\\', '\n', '{', '}', ' ', '=', ',', 'a', 'B', '7', '-', '.', 'é', '⊕',
    ];
    ALPHABET[idx as usize % ALPHABET.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Prometheus exposition stays line-parseable no matter what a db id
    /// contains, and distinct ids never collide onto one series.
    #[test]
    fn exposition_survives_hostile_db_ids(
        raw_a in proptest::collection::vec(any::<u8>(), 1..12),
        raw_b in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let id_a: String = raw_a.iter().map(|&b| hostile_char(b)).collect();
        let id_b: String = raw_b.iter().map(|&b| hostile_char(b)).collect();
        // Distinct ids map to distinct series (escape_label is injective).
        if id_a != id_b {
            prop_assert_ne!(
                exq_core::telemetry::db_series("exq_db_requests_total", &id_a),
                exq_core::telemetry::db_series("exq_db_requests_total", &id_b),
            );
        }
        let series = exq_core::telemetry::db_series("exq_db_requests_total", &id_a);
        exq_core::telemetry::counter(&series).inc();
        let text = exq_core::telemetry::render();
        prop_assert!(text.contains(&series), "registered series must render");
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            prop_assert!(
                split_series_value(line).is_some(),
                "unparseable exposition line: {:?}",
                line
            );
        }
        // Escaped newlines must never break a series across lines.
        prop_assert!(!series.contains('\n'));
        // Clean up so repeated cases don't grow the registry unboundedly.
        let removed = exq_core::telemetry::remove_db_series(&id_a);
        prop_assert!(removed >= 1, "drop must find the series it registered");
        prop_assert!(!exq_core::telemetry::render().contains(&series));
    }
}

/// Eight writer threads hammer the flight recorder concurrently. Every
/// event that survives into a snapshot must be intact (its payload words
/// satisfy the writer's invariant), the ring never exceeds its fixed
/// capacity, and the JSON dump stays valid throughout.
#[test]
fn flight_recorder_survives_eight_thread_hammer() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const THREADS: u64 = 8;
    const EVENTS_PER_THREAD: u64 = 4_000;

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut dumps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let dump = exq_core::flight::dump_json();
                exq_core::flight::validate_json_lines(&dump)
                    .expect("concurrent dump must stay valid JSON lines");
                dumps += 1;
            }
            dumps
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    // Invariant: c == a * 1_000_000 + b, a == thread id.
                    exq_core::flight::event(
                        exq_core::flight::Kind::Admit,
                        "hammer-db",
                        t,
                        i,
                        t * 1_000_000 + i,
                    );
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let dumps = reader.join().unwrap();
    assert!(dumps > 0, "reader thread must have raced at least one dump");

    let events = exq_core::flight::snapshot();
    assert!(
        events.len() <= exq_core::flight::CAPACITY,
        "ring must stay bounded: {} > {}",
        events.len(),
        exq_core::flight::CAPACITY
    );
    let mut ours = 0usize;
    let mut last_seq = None;
    for e in &events {
        if let Some(prev) = last_seq {
            assert!(e.seq > prev, "snapshot seqs must be strictly increasing");
        }
        last_seq = Some(e.seq);
        if e.db == "hammer-db" {
            ours += 1;
            assert!(e.a < THREADS, "torn event: thread id {}", e.a);
            assert_eq!(
                e.c,
                e.a * 1_000_000 + e.b,
                "torn event payload: a={} b={} c={}",
                e.a,
                e.b,
                e.c
            );
        }
    }
    assert!(
        ours > 0,
        "hammer events must be visible in the final snapshot"
    );
}
