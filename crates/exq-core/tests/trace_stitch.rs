//! End-to-end trace stitching and telemetry transparency.
//!
//! One query over a real TCP socket with a JSON-lines trace sink must emit
//! a single stitched span tree: one trace id shared across the wire, client
//! and server sides both present, server spans re-parented under the
//! client's `wire.roundtrip` span, and span durations agreeing with the
//! phase timings the query reports. And switching telemetry on or off must
//! never change an answer.
//!
//! Everything runs in one `#[test]` because the checks toggle process-wide
//! telemetry state (enabled flag, trace sink) that concurrent tests in the
//! same binary would race on.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::telemetry;
use exq_core::transport::{serve, ServeConfig, TcpTransport};
use exq_core::{Client, Server};
use exq_xml::Document;
use std::net::TcpListener;
use std::sync::{Arc, RwLock};

fn hosted() -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 33)
        .unwrap()
        .split()
}

/// Pulls one field's raw token out of a span's JSON line (values are either
/// quoted hex strings or bare integers; names never contain escapes).
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).expect("field present") + pat.len();
    let rest = &line[start..];
    let (rest, quoted) = match rest.strip_prefix('"') {
        Some(r) => (r, true),
        None => (rest, false),
    };
    let end = rest
        .find(if quoted { ['"', '"'] } else { [',', '}'] })
        .expect("field terminated");
    &rest[..end]
}

#[test]
fn traces_stitch_and_telemetry_never_changes_answers() {
    let queries = [
        "//patient/pname",
        "//patient[pname = 'Betty']/age",
        "//patient[.//policy/@coverage = 5000]/pname",
        "//insurance",
        "//nosuchtag",
    ];
    let (client, mut server) = hosted();
    server.set_cache_entries(Some(1024));
    let shared = Arc::new(RwLock::new(server));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(listener, shared, ServeConfig::default()).unwrap();
    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();

    // --- Part 1: telemetry on vs off yields bit-identical answers. -------
    telemetry::set_enabled(false);
    let off: Vec<Vec<String>> = queries
        .iter()
        .map(|q| client.query_via(&mut tcp, q).unwrap().results)
        .collect();
    telemetry::set_enabled(true);
    telemetry::set_trace_all(true);
    let on: Vec<Vec<String>> = queries
        .iter()
        .map(|q| client.query_via(&mut tcp, q).unwrap().results)
        .collect();
    telemetry::set_trace_all(false);
    assert_eq!(on, off, "telemetry must be answer-transparent");

    // --- Part 2: one traced query emits a stitched client+server tree. --
    let path = std::env::temp_dir().join(format!("exq_trace_{}.jsonl", std::process::id()));
    telemetry::set_trace_out(&path).unwrap();
    // A query part 1 never ran: a response-cache miss walks the full
    // server pipeline, so every span in the taxonomy gets recorded.
    let out = client
        .query_via(&mut tcp, "//patient[pname = 'Matt']/age")
        .unwrap();
    telemetry::clear_trace_out();
    handle.shutdown();
    assert_eq!(out.results, ["<age>40</age>"]);

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 6, "expected a full span tree, got:\n{text}");

    // One shared, nonzero trace id across every span on both sides.
    let trace = field(lines[0], "trace");
    assert_ne!(trace, "0000000000000000");
    for l in &lines {
        assert_eq!(field(l, "trace"), trace, "trace id must span the wire");
    }
    let sides: std::collections::HashSet<&str> = lines.iter().map(|l| field(l, "side")).collect();
    assert!(sides.contains("client") && sides.contains("server"));

    let by_name =
        |name: &str| -> Vec<&&str> { lines.iter().filter(|l| field(l, "name") == name).collect() };
    for required in [
        "client.translate",
        "wire.roundtrip",
        "client.decrypt",
        "client.post_process",
        "server.cache_probe",
        "server.dsi_lookup",
        "server.sjoin",
        "server.assemble",
    ] {
        assert!(!by_name(required).is_empty(), "missing span {required}");
    }

    // Server spans hang off the client's roundtrip span: one tree.
    let roundtrips = by_name("wire.roundtrip");
    assert_eq!(roundtrips.len(), 1, "single query, single roundtrip");
    let roundtrip_id = field(roundtrips[0], "id");
    let roundtrip_dur: u64 = field(roundtrips[0], "dur_ns").parse().unwrap();
    for l in &lines {
        if field(l, "side") == "server" {
            assert_eq!(
                field(l, "parent"),
                roundtrip_id,
                "server spans must re-parent under wire.roundtrip"
            );
            let dur: u64 = field(l, "dur_ns").parse().unwrap();
            assert!(
                dur <= roundtrip_dur,
                "a server span cannot outlast the roundtrip that carried it"
            );
        }
    }

    // Span durations are the reported stats, not re-measurements.
    let dsi_dur: u64 = field(by_name("server.dsi_lookup")[0], "dur_ns")
        .parse()
        .unwrap();
    assert_eq!(
        dsi_dur,
        out.timing.server_translate.as_nanos() as u64,
        "server.dsi_lookup span must equal the reported translate time"
    );
    let translate_dur: u64 = field(by_name("client.translate")[0], "dur_ns")
        .parse()
        .unwrap();
    assert_eq!(
        translate_dur,
        out.timing.client_translate.as_nanos() as u64,
        "client.translate span must equal the reported phase timing"
    );
    let decrypt_dur: u64 = field(by_name("client.decrypt")[0], "dur_ns")
        .parse()
        .unwrap();
    assert!(
        decrypt_dur <= out.timing.decrypt.as_nanos() as u64,
        "measured decrypt span cannot exceed the era-adjusted phase timing"
    );
}
