//! Save/load round trips: a hosted database persisted to bytes and restored
//! must answer queries identically, and updates must survive persistence.

use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::{Client, Server};
use exq_xml::Document;

fn hosted() -> (Client, Server, Document) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /age)").unwrap(),
    ];
    let (c, s) = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 31)
        .unwrap()
        .split();
    (c, s, doc)
}

const QUERIES: &[&str] = &[
    "//patient",
    "//patient[pname = 'Betty']/SSN",
    "//patient[.//policy/@coverage >= 10000]/SSN",
    "//insurance//policy",
    "//patient[age = 40]/pname",
    "//pname",
];

#[test]
fn server_roundtrip_answers_identically() {
    let (client, server, _) = hosted();
    let bytes = server.save_bytes().unwrap();
    let restored = Server::load_bytes(&bytes).unwrap();
    for q in QUERIES {
        let a = client.query(&server, q).unwrap().results;
        let b = client.query(&restored, q).unwrap().results;
        assert_eq!(a, b, "mismatch after server reload for {q}");
    }
}

#[test]
fn client_roundtrip_answers_identically() {
    let (client, server, _) = hosted();
    let bytes = client.save_bytes();
    let restored = Client::load_bytes(&bytes).unwrap();
    for q in QUERIES {
        let a = client.query(&server, q).unwrap().results;
        let b = restored.query(&server, q).unwrap().results;
        assert_eq!(a, b, "mismatch after client reload for {q}");
    }
}

#[test]
fn both_roundtrip_through_files() {
    let (client, server, _) = hosted();
    let dir = std::env::temp_dir().join(format!("exq-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spath = dir.join("server.exq");
    let cpath = dir.join("client.exq");
    server.save(&spath).unwrap();
    client.save(&cpath).unwrap();
    let server2 = Server::load(&spath).unwrap();
    let client2 = Client::load(&cpath).unwrap();
    for q in QUERIES {
        let a = client.query(&server, q).unwrap().results;
        let b = client2.query(&server2, q).unwrap().results;
        assert_eq!(a, b);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn updates_survive_persistence() {
    let (mut client, mut server, _) = hosted();
    client
        .insert(
            &mut server,
            "/hospital",
            "<patient><pname>Zoe</pname><SSN>112233</SSN><age>29</age></patient>",
            5,
        )
        .unwrap();
    client.delete(&mut server, "//patient[age = 40]").unwrap();

    let server2 = Server::load_bytes(&server.save_bytes().unwrap()).unwrap();
    let client2 = Client::load_bytes(&client.save_bytes()).unwrap();

    let out = client2.query(&server2, "//patient/pname").unwrap();
    assert_eq!(out.results.len(), 2);
    let out = client2
        .query(&server2, "//patient[pname = 'Zoe']/age")
        .unwrap();
    assert_eq!(out.results, ["<age>29</age>"]);
    let out = client2.query(&server2, "//patient[age = 40]").unwrap();
    assert!(out.results.is_empty());
}

#[test]
fn aggregates_survive_persistence() {
    use exq_core::aggregate::Aggregate;
    let (client, server, _) = hosted();
    let server2 = Server::load_bytes(&server.save_bytes().unwrap()).unwrap();
    let client2 = Client::load_bytes(&client.save_bytes()).unwrap();
    let max = client2
        .aggregate(&server2, "//policy/@coverage", Aggregate::Max)
        .unwrap();
    assert_eq!(max.value.as_deref(), Some("1000000"));
}

#[test]
fn corrupted_files_rejected() {
    let (client, server, _) = hosted();
    let mut s = server.save_bytes().unwrap();
    s[0] ^= 0xFF;
    assert!(Server::load_bytes(&s).is_err());
    let mut c = client.save_bytes();
    c[0] ^= 0xFF;
    assert!(Client::load_bytes(&c).is_err());
    // Truncation.
    let s = server.save_bytes().unwrap();
    assert!(Server::load_bytes(&s[..s.len() / 2]).is_err());
    assert!(Server::load_bytes(&[]).is_err());
}

#[test]
fn state_files_do_not_leak_plaintext() {
    let (client, server, _) = hosted();
    let bytes = server.save_bytes().unwrap();
    let as_text = String::from_utf8_lossy(&bytes);
    // Node-type-protected values must not appear in the server state file.
    for secret in ["34221", "78543", "1000000"] {
        assert!(!as_text.contains(secret), "server file leaks {secret}");
    }
    // The client file may contain categorical codec values (it is the
    // owner's private state) — but it must contain the master key material,
    // so sanity-check the magic instead.
    let cbytes = client.save_bytes();
    assert!(cbytes.starts_with(b"EXQCL2"));
    assert!(bytes.starts_with(b"EXQSV2"));
}

#[test]
fn bit_flips_anywhere_are_rejected() {
    // The trailing checksum must catch corruption at *any* byte, not just
    // in the magic — sample a spread of positions (plus the checksum
    // itself) across both artifacts.
    let (client, server, _) = hosted();
    for bytes in [server.save_bytes().unwrap(), client.save_bytes()] {
        let is_server = bytes.starts_with(b"EXQSV2");
        let step = (bytes.len() / 64).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x10;
            let rejected = if is_server {
                Server::load_bytes(&flipped).is_err()
            } else {
                Client::load_bytes(&flipped).is_err()
            };
            assert!(rejected, "bit flip at byte {pos} went undetected");
        }
    }
}

#[test]
fn truncations_are_rejected_cleanly() {
    let (_, server, _) = hosted();
    let bytes = server.save_bytes().unwrap();
    for keep in [0, 3, 6, 9, bytes.len() - 5, bytes.len() - 1] {
        let err = Server::load_bytes(&bytes[..keep]).unwrap_err();
        assert!(
            matches!(err, exq_core::CoreError::Persist(_)),
            "truncation to {keep} bytes: got {err:?}"
        );
    }
}

#[test]
fn save_is_atomic_and_durable() {
    let dir = std::env::temp_dir().join(format!("exq_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("server.exq");
    let (_, server, _) = hosted();
    server.save(&path).unwrap();
    let loaded = Server::load(&path).unwrap();
    assert_eq!(loaded.save_bytes().unwrap(), server.save_bytes().unwrap());
    // Overwriting in place must go through the rename path (no temp file
    // left behind) and leave a loadable artifact.
    server.save(&path).unwrap();
    assert!(Server::load(&path).is_ok());
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
