//! End-to-end tests over a real socket: a server behind [`serve`] on an
//! ephemeral port must be indistinguishable from the in-process link —
//! same results, same exact byte counts, mutations and aggregates
//! included — and must survive hostile framing without dying.

use exq_core::aggregate::Aggregate;
use exq_core::codec::{Message, FRAME_HEADER_LEN};
use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::transport::{serve, InProcess, ServeConfig, ServeHandle, TcpTransport, Transport};
use exq_core::{Client, Server};
use exq_xml::Document;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, RwLock};

fn hosted() -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 77)
        .unwrap()
        .split()
}

fn start(server: Server) -> (ServeHandle, Arc<RwLock<Server>>) {
    let shared = Arc::new(RwLock::new(server));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve(listener, Arc::clone(&shared), ServeConfig::default()).unwrap();
    (handle, shared)
}

#[test]
fn tcp_matches_in_process_results_and_bytes() {
    let (client, server) = hosted();
    let reference = server.clone();
    let (handle, _shared) = start(server);
    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();
    let mut local = InProcess::shared(&reference);

    for q in [
        "//patient/pname",
        "//patient[pname = 'Betty']/age",
        "//patient[.//policy/@coverage = 5000]/pname",
        "//insurance",
        "//nosuchtag",
    ] {
        let over_tcp = client.query_via(&mut tcp, q).unwrap();
        let in_proc = client.query_via(&mut local, q).unwrap();
        assert_eq!(over_tcp.results, in_proc.results, "results differ for {q}");
        assert_eq!(
            over_tcp.bytes_to_server, in_proc.bytes_to_server,
            "request bytes differ for {q}"
        );
        assert_eq!(
            over_tcp.bytes_to_client, in_proc.bytes_to_client,
            "response bytes differ for {q}"
        );
    }
    // Both links saw identical cumulative traffic.
    assert_eq!(tcp.stats(), local.stats());
    handle.shutdown();
}

#[test]
fn naive_fallback_runs_over_tcp() {
    let (client, server) = hosted();
    let (handle, _shared) = start(server);
    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();
    // `parent::` is not server-evaluable; the client transparently falls
    // back to shipping the whole database in a NaiveQuery round trip.
    let out = client.query_via(&mut tcp, "//age/parent::patient").unwrap();
    assert!(out.naive_fallback);
    assert_eq!(out.results.len(), 2);
    handle.shutdown();
}

#[test]
fn aggregates_run_over_tcp() {
    let (client, server) = hosted();
    let reference = server.clone();
    let (handle, _shared) = start(server);
    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();

    for (path, agg) in [
        ("//policy/@coverage", Aggregate::Max),
        ("//policy/@coverage", Aggregate::Min),
        ("//patient", Aggregate::Count),
        ("//age", Aggregate::Max),
    ] {
        let over_tcp = client.aggregate_via(&mut tcp, path, agg).unwrap();
        let in_proc = client.aggregate(&reference, path, agg).unwrap();
        assert_eq!(over_tcp.value, in_proc.value, "{path} {agg:?}");
    }
    handle.shutdown();
}

#[test]
fn mutations_run_over_tcp() {
    let (mut client, server) = hosted();
    let (handle, shared) = start(server);
    let record = r#"<patient><pname>Zoe</pname><SSN>112233</SSN><age>29</age>
        <insurance><policy coverage="7500">55555</policy></insurance></patient>"#;

    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();
    client.insert_via(&mut tcp, "/hospital", record, 9).unwrap();
    let out = client.query_via(&mut tcp, "//patient/age").unwrap();
    assert_eq!(out.results.len(), 3);
    let out = client
        .query_via(&mut tcp, "//patient[pname = 'Zoe']/age")
        .unwrap();
    assert_eq!(out.results, ["<age>29</age>"]);

    let deleted = client.delete_via(&mut tcp, "//patient[age = 40]").unwrap();
    assert_eq!(deleted.deleted, 1);
    let out = client.query_via(&mut tcp, "//patient/age").unwrap();
    assert_eq!(out.results.len(), 2);

    handle.shutdown();
    // The mutations really landed in the shared server state.
    assert!(shared.read().unwrap().block_count() > 0);
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let (client, server) = hosted();
    let (handle, _shared) = start(server);
    let addr = handle.addr();
    let client = Arc::new(client);

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                let mut tcp = TcpTransport::connect_default(addr).unwrap();
                for _ in 0..5 {
                    let out = client
                        .query_via(&mut tcp, "//patient[pname = 'Betty']/age")
                        .unwrap();
                    assert_eq!(out.results, ["<age>35</age>"]);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
}

#[test]
fn garbage_framing_gets_error_frame_then_close() {
    let (_, server) = hosted();
    let (handle, _shared) = start(server);
    let mut raw = TcpStream::connect(handle.addr()).unwrap();

    // Valid length, bogus magic: the server answers with one error frame
    // and hangs up (framing cannot be resynchronized).
    raw.write_all(b"XXzz\x00\x00\x00\x00").unwrap();
    raw.flush().unwrap();
    let mut header = [0u8; FRAME_HEADER_LEN];
    raw.read_exact(&mut header).unwrap();
    let (_, msg_type, payload_len) = Message::parse_header(&header).unwrap();
    assert_eq!(msg_type, 0xFF, "expected an error frame");
    let mut payload = vec![0u8; payload_len];
    raw.read_exact(&mut payload).unwrap();
    let mut frame = header.to_vec();
    frame.extend_from_slice(&payload);
    assert!(matches!(
        Message::decode_frame(&frame),
        Ok(Message::Error(_))
    ));
    // Connection is closed afterwards.
    let n = raw.read(&mut header).unwrap();
    assert_eq!(n, 0, "server should close after a framing error");

    // The server is still alive for well-behaved clients.
    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();
    assert!(tcp.send_naive().is_ok());
    handle.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected_not_allocated() {
    let (_, server) = hosted();
    let (handle, _shared) = start(server);
    let mut raw = TcpStream::connect(handle.addr()).unwrap();

    // Magic + version + Query type, then a 3 GiB length prefix.
    let mut frame = Vec::new();
    frame.extend_from_slice(b"EQ");
    frame.push(1);
    frame.push(0x01);
    frame.extend_from_slice(&(3_000_000_000u32).to_le_bytes());
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();

    let mut header = [0u8; FRAME_HEADER_LEN];
    raw.read_exact(&mut header).unwrap();
    let (_, msg_type, _) = Message::parse_header(&header).unwrap();
    assert_eq!(msg_type, 0xFF, "oversize must be answered with an error");
    handle.shutdown();
}

fn start_with(server: Server, config: ServeConfig) -> ServeHandle {
    let shared = Arc::new(RwLock::new(server));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve(listener, shared, config).unwrap()
}

/// Reads one full response frame (header + version-dependent extra fields
/// + payload) off a raw stream, handling every protocol version.
fn read_frame(raw: &mut TcpStream) -> Message {
    let mut header = [0u8; FRAME_HEADER_LEN];
    raw.read_exact(&mut header).unwrap();
    let (version, _, payload_len) = Message::parse_header(&header).unwrap();
    let mut frame = header.to_vec();
    frame.resize(
        FRAME_HEADER_LEN + exq_core::codec::frame_extra_len(version) + payload_len,
        0,
    );
    raw.read_exact(&mut frame[FRAME_HEADER_LEN..]).unwrap();
    Message::decode_frame(&frame).unwrap()
}

/// A legacy v1 peer — no trace field in its frames — must still be served,
/// and the reply must come back in v1 framing (no trace field, legacy
/// Answer payload) so the old decoder can read it.
#[test]
fn legacy_v1_peer_is_still_served() {
    use exq_core::codec::LEGACY_PROTOCOL_VERSION;
    let (_, server) = hosted();
    let (handle, _shared) = start(server);
    let mut raw = TcpStream::connect(handle.addr()).unwrap();

    let frame = Message::NaiveQuery.encode_frame_v(LEGACY_PROTOCOL_VERSION, 0);
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();

    let mut header = [0u8; FRAME_HEADER_LEN];
    raw.read_exact(&mut header).unwrap();
    let (version, msg_type, payload_len) = Message::parse_header(&header).unwrap();
    assert_eq!(version, LEGACY_PROTOCOL_VERSION, "reply must echo v1");
    assert_eq!(msg_type, 0x81, "expected an Answer frame");
    let mut reply = header.to_vec();
    reply.resize(FRAME_HEADER_LEN + payload_len, 0);
    raw.read_exact(&mut reply[FRAME_HEADER_LEN..]).unwrap();
    match Message::decode_frame(&reply).unwrap() {
        Message::Answer(resp) => {
            assert!(!resp.pruned_xml.is_empty() || !resp.blocks.is_empty());
            assert!(resp.spans.is_empty(), "v1 answers carry no spans");
        }
        other => panic!("expected Answer, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn dribbling_writer_is_served_but_mid_frame_staller_is_dropped() {
    let (_, server) = hosted();
    let handle = start_with(
        server,
        ServeConfig {
            workers: 2,
            poll_interval: std::time::Duration::from_millis(20),
            io_timeout: std::time::Duration::from_millis(400),
            threads: 1,
            ..ServeConfig::default()
        },
    );

    // A dribbling but live writer: one byte every 25 ms. Each byte of
    // progress resets the mid-frame deadline, so the whole frame lands even
    // though total delivery time (~frame_len * 25 ms) exceeds io_timeout.
    let frame = Message::NaiveQuery.encode_frame();
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    for b in &frame {
        raw.write_all(std::slice::from_ref(b)).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(
        matches!(read_frame(&mut raw), Message::Answer(_)),
        "dribbling writer must still get its answer"
    );

    // A mid-frame staller: half a header, then silence. Once io_timeout
    // elapses with no progress the server drops the connection.
    let mut stalled = TcpStream::connect(handle.addr()).unwrap();
    stalled.write_all(&frame[..FRAME_HEADER_LEN / 2]).unwrap();
    stalled.flush().unwrap();
    stalled
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 8];
    let start = std::time::Instant::now();
    let n = stalled.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "stalled mid-frame peer must be disconnected");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(4),
        "drop must come from io_timeout, not the test's own read timeout"
    );
    handle.shutdown();
}

#[test]
fn idle_between_frames_is_never_dropped() {
    let (_, server) = hosted();
    let handle = start_with(
        server,
        ServeConfig {
            workers: 1,
            poll_interval: std::time::Duration::from_millis(20),
            io_timeout: std::time::Duration::from_millis(150),
            threads: 1,
            ..ServeConfig::default()
        },
    );

    // Idle well past io_timeout *between* frames: the connection must
    // survive, because the budget only applies once a frame has started.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(600));
    raw.write_all(&Message::NaiveQuery.encode_frame()).unwrap();
    raw.flush().unwrap();
    assert!(matches!(read_frame(&mut raw), Message::Answer(_)));

    // And again: a second idle gap on the same connection.
    std::thread::sleep(std::time::Duration::from_millis(400));
    raw.write_all(&Message::NaiveQuery.encode_frame()).unwrap();
    raw.flush().unwrap();
    assert!(matches!(read_frame(&mut raw), Message::Answer(_)));
    handle.shutdown();
}
