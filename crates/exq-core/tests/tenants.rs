//! Multi-tenant isolation: one serve loop hosting several independently
//! keyed sealed databases must keep them bit-for-bit independent — answers,
//! caches, replay tables, admission slots, and on-disk state — while v1–v3
//! peers keep getting correct answers from the default db.

use exq_core::codec::{Message, FRAME_HEADER_LEN};
use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::tenant::TenantRegistry;
use exq_core::transport::{serve_multi, ServeConfig, ServeHandle, TcpTransport, Transport};
use exq_core::{Client, Server};
use exq_xml::Document;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("exq-tenants-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A hospital database whose patient names/values are salted by `tag` so
/// every tenant's correct answers are distinguishable, sealed under keys
/// derived from `seed` so every tenant is independently keyed.
fn hosted(tag: &str, seed: u64) -> (Client, Server) {
    let doc = Document::parse(&format!(
        r#"<hospital>
            <patient><pname>Betty-{tag}</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt-{tag}</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
           </hospital>"#
    ))
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, seed)
        .unwrap()
        .split()
}

/// Three independently keyed databases behind one registry, plus each
/// tenant's paired client.
fn three_db_registry(prefix: &str) -> (Arc<TenantRegistry>, Vec<(String, Client)>) {
    let registry = Arc::new(TenantRegistry::new(&format!("{prefix}-a")).unwrap());
    let mut clients = Vec::new();
    for (i, suffix) in ["a", "b", "c"].iter().enumerate() {
        let name = format!("{prefix}-{suffix}");
        let (client, server) = hosted(suffix, 1000 + i as u64 * 111);
        registry
            .create(&name, server, client.key_fingerprint(), 0)
            .unwrap();
        clients.push((name, client));
    }
    (registry, clients)
}

fn start(registry: Arc<TenantRegistry>, config: ServeConfig) -> ServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve_multi(listener, registry, config).unwrap()
}

fn connect(handle: &ServeHandle, db: &str) -> TcpTransport {
    TcpTransport::connect_default(handle.addr())
        .unwrap()
        .with_db(db)
        .unwrap()
}

/// Each tenant's client gets exactly its own database's answers, keyed by
/// its own keys, through one shared serve loop.
#[test]
fn three_tenants_answer_independently() {
    let (registry, clients) = three_db_registry("ind");
    assert_eq!(registry.len(), 3);
    let handle = start(Arc::clone(&registry), ServeConfig::default());

    for (name, client) in &clients {
        let suffix = name.rsplit('-').next().unwrap();
        let mut tcp = connect(&handle, name);
        let out = client.query_via(&mut tcp, "//patient/pname").unwrap();
        assert_eq!(
            out.results,
            [
                format!("<pname>Betty-{suffix}</pname>"),
                format!("<pname>Matt-{suffix}</pname>")
            ],
            "wrong answers for tenant {name}"
        );
        // Value predicates exercise the per-tenant value indexes too.
        let out = client
            .query_via(&mut tcp, "//patient[.//policy/@coverage = 5000]/age")
            .unwrap();
        assert_eq!(out.results, ["<age>40</age>"], "tenant {name}");
    }
    // An anonymous (no --db) v4 client lands on the default db.
    let (default_name, default_client) = &clients[0];
    assert_eq!(registry.default_db(), default_name);
    let mut anon = TcpTransport::connect_default(handle.addr()).unwrap();
    let out = default_client
        .query_via(&mut anon, "//patient/age")
        .unwrap();
    assert_eq!(out.results.len(), 2);
    handle.shutdown();
}

/// Unknown and malformed db ids are answered with a typed error frame —
/// never a panic, never another tenant's data — and the server stays up.
#[test]
fn unknown_and_malformed_db_ids_get_typed_errors() {
    let (registry, clients) = three_db_registry("bad");
    let handle = start(Arc::clone(&registry), ServeConfig::default());

    // Well-formed but unregistered name: typed tenant error over the wire.
    let mut tcp = connect(&handle, "no-such-db");
    let err = tcp.send_naive().unwrap_err();
    assert!(
        err.to_string().contains("unknown database"),
        "expected a tenant error, got: {err}"
    );

    // Oversized ids are rejected client-side before anything is sent.
    assert!(TcpTransport::connect_default(handle.addr())
        .unwrap()
        .with_db(&"x".repeat(64))
        .is_err());
    assert!(TcpTransport::connect_default(handle.addr())
        .unwrap()
        .with_db("")
        .is_err());

    // A hostile frame with a malformed db-id field (nonzero padding) gets
    // one error frame, then the connection drops; the server survives.
    let mut frame = Message::NaiveQuery.encode_frame();
    let db_pos = FRAME_HEADER_LEN + 8 + 8 + 4;
    frame[db_pos + 10] = 0xAB; // padding byte beyond the (empty) id
    let crc_pos = FRAME_HEADER_LEN + 8 + 8;
    let crc = exq_core::codec::crc32(&[&frame[..crc_pos], &frame[crc_pos + 4..]]);
    frame[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    let mut header = [0u8; FRAME_HEADER_LEN];
    raw.read_exact(&mut header).unwrap();
    let (_, msg_type, _) = Message::parse_header(&header).unwrap();
    assert_eq!(msg_type, 0xFF, "malformed db id must yield an error frame");

    // Healthy tenants are unaffected.
    let (name, client) = &clients[1];
    let mut ok = connect(&handle, name);
    assert_eq!(
        client
            .query_via(&mut ok, "//patient/age")
            .unwrap()
            .results
            .len(),
        2
    );
    handle.shutdown();
}

/// A hot tenant's inserts and deletes must not invalidate another tenant's
/// cached answers: tenant A's repeat query stays a cache hit with
/// bit-identical results while tenant B mutates concurrently.
#[test]
fn cache_generations_do_not_bleed_across_tenants() {
    let (registry, clients) = three_db_registry("cache");
    let handle = start(
        Arc::clone(&registry),
        ServeConfig {
            cache_entries: Some(64),
            ..ServeConfig::default()
        },
    );
    let (name_a, client_a) = &clients[0];
    let (name_b, _) = &clients[1];
    let mut client_b = clients[1].1.clone();

    let q = "//patient[pname = 'Betty-a']/age";
    let mut tcp_a = connect(&handle, name_a);
    let cold = client_a.query_via(&mut tcp_a, q).unwrap();
    assert!(!cold.served_from_cache);
    let warm = client_a.query_via(&mut tcp_a, q).unwrap();
    assert!(warm.served_from_cache, "repeat query must hit A's cache");
    assert_eq!(warm.results, cold.results);

    // Tenant B churns: insert then delete, bumping *its* generation twice.
    let mut tcp_b = connect(&handle, name_b);
    let record = r#"<patient><pname>Zoe-b</pname><SSN>112233</SSN><age>29</age>
        <insurance><policy coverage="7500">55555</policy></insurance></patient>"#;
    client_b
        .insert_via(&mut tcp_b, "/hospital", record, 9)
        .unwrap();
    let deleted = client_b
        .delete_via(&mut tcp_b, "//patient[age = 29]")
        .unwrap();
    assert_eq!(deleted.deleted, 1);

    // A's cached answer must still be served from cache, bit-identical.
    let after = client_a.query_via(&mut tcp_a, q).unwrap();
    assert!(
        after.served_from_cache,
        "B's mutations must not bump A's cache generation"
    );
    assert_eq!(
        after.results, cold.results,
        "answers must stay bit-identical"
    );

    let stats_a = registry.get(name_a).unwrap().cache_stats();
    let stats_b = registry.get(name_b).unwrap().cache_stats();
    assert!(stats_a.response_hits >= 2, "A: {stats_a:?}");
    assert_eq!(stats_a.generation, 0, "A's generation must be untouched");
    assert!(stats_b.generation >= 2, "B saw mutations: {stats_b:?}");
    handle.shutdown();
}

/// Request ids are only unique per client, so the at-most-once replay
/// ledger must be per-tenant: the same req id must dedupe retries within
/// one db while still applying on another db.
#[test]
fn replay_tables_do_not_bleed_across_tenants() {
    let (registry, clients) = three_db_registry("replay");
    let handle = start(Arc::clone(&registry), ServeConfig::default());
    let (name_a, client_a) = &clients[0];
    let (name_b, client_b) = &clients[1];

    let sq_a = client_a
        .translate("//patient[age = 40]")
        .unwrap()
        .server_query
        .unwrap();
    let sq_b = client_b
        .translate("//patient[age = 40]")
        .unwrap()
        .server_query
        .unwrap();

    // Same req id, two tenants: both deletes must actually apply.
    let mut tcp_a = connect(&handle, name_a);
    tcp_a.set_next_request_id(777);
    let first_a = tcp_a.delete_where(&sq_a).unwrap();
    assert_eq!(first_a.deleted, 1);

    let mut tcp_b = connect(&handle, name_b);
    tcp_b.set_next_request_id(777);
    let first_b = tcp_b.delete_where(&sq_b).unwrap();
    assert_eq!(
        first_b.deleted, 1,
        "B's mutation must apply — a shared replay table would have \
         returned A's recorded reply instead"
    );

    // Same id again on A: replay hit, the recorded reply comes back even
    // though the subtree is already gone.
    tcp_a.set_next_request_id(777);
    let replayed = tcp_a.delete_where(&sq_a).unwrap();
    assert_eq!(
        replayed.deleted, 1,
        "replayed mutation returns its recorded reply"
    );
    // A fresh id really re-executes (nothing left to delete).
    tcp_a.set_next_request_id(778);
    assert_eq!(tcp_a.delete_where(&sq_a).unwrap().deleted, 0);
    handle.shutdown();
}

/// Per-tenant admission: a hot tenant saturating its fair share gets Busy
/// while a quiet tenant's requests keep being admitted and answered
/// bit-identically.
#[test]
fn hot_tenant_sheds_without_starving_quiet_tenant() {
    let (registry, clients) = three_db_registry("fair");
    let handle = start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 8,
            max_inflight_per_db: 1,
            cache_entries: Some(0), // every query is a shed-able miss
            ..ServeConfig::default()
        },
    );
    let (name_hot, _) = &clients[0];
    let (name_quiet, client_quiet) = &clients[2];

    // Hot tenant: several threads hammering uncacheable work on one db.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let addr = handle.addr();
            let name = name_hot.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tcp = TcpTransport::connect_default(addr)
                    .unwrap()
                    .with_db(&name)
                    .unwrap();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let _ = tcp.send_naive(); // Busy errors are expected
                }
            })
        })
        .collect();

    // Quiet tenant: sequential queries must all be admitted and correct.
    let expected = [
        "<pname>Betty-c</pname>".to_owned(),
        "<pname>Matt-c</pname>".to_owned(),
    ];
    let mut tcp_quiet = connect(&handle, name_quiet);
    for _ in 0..20 {
        let out = client_quiet
            .query_via(&mut tcp_quiet, "//patient/pname")
            .unwrap();
        assert_eq!(out.results, expected, "quiet tenant must never be starved");
    }

    // The hot tenant really was shed at its cap; the quiet tenant never was.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let hot = registry.get(name_hot).unwrap();
    while hot.shed_total() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    for h in hammers {
        h.join().unwrap();
    }
    assert!(hot.shed_total() > 0, "hot tenant at cap 1 must shed");
    assert_eq!(
        registry.get(name_quiet).unwrap().shed_total(),
        0,
        "quiet tenant must not inherit the hot tenant's Busy storm"
    );
    handle.shutdown();
}

/// Directory-of-databases persistence: save, reload, serve, kill, restart —
/// every tenant's answers survive identically, as does the manifest
/// metadata.
#[test]
fn multi_db_layout_survives_restart() {
    let tmp = TempDir::new("layout");
    let dir = tmp.0.join("dbs");
    let (registry, clients) = three_db_registry("disk");
    registry.get(&clients[1].0).unwrap().set_max_inflight(5);
    registry.save_dir(&dir).unwrap();

    // Reload and serve: every tenant answers; quotas and fingerprints ride
    // the manifest.
    let reloaded = Arc::new(TenantRegistry::load_dir(&dir).unwrap());
    assert_eq!(reloaded.default_db(), registry.default_db());
    assert_eq!(reloaded.names(), registry.names());
    assert_eq!(reloaded.get(&clients[1].0).unwrap().max_inflight(), 5);
    for (name, client) in &clients {
        assert_eq!(
            reloaded.get(name).unwrap().key_fingerprint(),
            client.key_fingerprint(),
            "fingerprint must survive the manifest"
        );
    }
    let handle = start(Arc::clone(&reloaded), ServeConfig::default());
    let mut first_answers = Vec::new();
    for (name, client) in &clients {
        let mut tcp = connect(&handle, name);
        first_answers.push(
            client
                .query_via(&mut tcp, "//patient/pname")
                .unwrap()
                .results,
        );
    }
    handle.shutdown(); // "kill"

    // Restart from disk: bit-identical answers.
    let restarted = Arc::new(TenantRegistry::load_dir(&dir).unwrap());
    let handle = start(Arc::clone(&restarted), ServeConfig::default());
    for ((name, client), before) in clients.iter().zip(&first_answers) {
        let mut tcp = connect(&handle, name);
        let again = client.query_via(&mut tcp, "//patient/pname").unwrap();
        assert_eq!(&again.results, before, "restart changed {name}'s answers");
    }
    handle.shutdown();
}

/// A legacy single-file server artifact opens as a one-db registry (auto-
/// migration), and the next save writes the directory layout.
#[test]
fn single_file_artifact_auto_migrates() {
    let tmp = TempDir::new("migrate");
    let (client, server) = hosted("solo", 4242);
    let legacy = tmp.0.join("server.exq");
    server.save(&legacy).unwrap();

    let registry = TenantRegistry::open(&legacy, "main").unwrap();
    assert_eq!(registry.names(), vec!["main".to_owned()]);
    let handle = start(
        Arc::new(TenantRegistry::open(&legacy, "main").unwrap()),
        ServeConfig::default(),
    );
    // Anonymous and named routing both reach the migrated db.
    let mut anon = TcpTransport::connect_default(handle.addr()).unwrap();
    let out = client.query_via(&mut anon, "//patient/pname").unwrap();
    assert_eq!(out.results.len(), 2);
    handle.shutdown();

    // Saving migrates to the directory layout, which opens as a directory.
    let dir = tmp.0.join("migrated");
    registry.save_dir(&dir).unwrap();
    assert!(dir.join("MANIFEST").exists());
    assert!(dir.join("main.exq").exists());
    let back = TenantRegistry::open(&dir, "ignored-default").unwrap();
    assert_eq!(
        back.default_db(),
        "main",
        "manifest default wins over the hint"
    );
}

/// v1, v2, and v3 frames carry no db id; a multi-tenant server must answer
/// them from the default db, framed in the requester's own version.
#[test]
fn legacy_v1_v2_v3_peers_get_default_db_answers() {
    use exq_core::codec::{LEGACY_PROTOCOL_VERSION, V2_PROTOCOL_VERSION, V3_PROTOCOL_VERSION};
    let (registry, _clients) = three_db_registry("compat");
    let handle = start(Arc::clone(&registry), ServeConfig::default());

    for version in [
        LEGACY_PROTOCOL_VERSION,
        V2_PROTOCOL_VERSION,
        V3_PROTOCOL_VERSION,
    ] {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        let frame = Message::NaiveQuery.encode_frame_v(version, 0);
        raw.write_all(&frame).unwrap();
        raw.flush().unwrap();

        let mut header = [0u8; FRAME_HEADER_LEN];
        raw.read_exact(&mut header).unwrap();
        let (got_version, msg_type, payload_len) = Message::parse_header(&header).unwrap();
        assert_eq!(got_version, version, "reply must echo v{version}");
        assert_eq!(msg_type, 0x81, "expected an Answer frame for v{version}");
        let mut reply = header.to_vec();
        reply.resize(
            FRAME_HEADER_LEN + exq_core::codec::frame_extra_len(version) + payload_len,
            0,
        );
        raw.read_exact(&mut reply[FRAME_HEADER_LEN..]).unwrap();
        match Message::decode_frame(&reply).unwrap() {
            Message::Answer(resp) => {
                assert!(
                    !resp.pruned_xml.is_empty() || !resp.blocks.is_empty(),
                    "v{version} answer must carry the default db"
                );
            }
            other => panic!("expected Answer for v{version}, got {other:?}"),
        }
    }
    handle.shutdown();
}

/// Dropping a database removes every one of its `{db="…"}` series from
/// the telemetry exposition — a dropped db must not linger as a frozen
/// ghost on the next scrape.
#[test]
fn dropped_db_series_vanish_from_exposition() {
    let name = "dropvanish-db";
    let registry = TenantRegistry::new(name).unwrap();
    let (client, server) = hosted("dv", 4242);
    registry
        .create(name, server, client.key_fingerprint(), 0)
        .unwrap();
    // Registration creates the per-db counters; traffic bumps them.
    registry.resolve("").unwrap();
    let label = format!("{{db=\"{name}\"}}");
    let text = exq_core::telemetry::render();
    assert!(
        text.contains(&label),
        "per-db series must exist while the db is registered"
    );

    registry.drop_db(name).unwrap();
    let text = exq_core::telemetry::render();
    assert!(
        !text.contains(&label),
        "per-db series must vanish after drop; exposition still has:\n{}",
        text.lines()
            .filter(|l| l.contains(&label))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Other dbs' series are untouched (spot-check the suffix matching).
    assert!(exq_core::telemetry::remove_db_series(name) == 0);
}

/// `FlightReq` answers with the recorder's ring as JSON lines over the
/// wire, and the dump stays parseable with real traffic behind it.
#[test]
fn flight_dump_is_valid_json_lines_over_the_wire() {
    let (registry, clients) = three_db_registry("flt");
    let handle = start(Arc::clone(&registry), ServeConfig::default());
    let (name, client) = &clients[1];
    let mut tcp = connect(&handle, name);
    for _ in 0..3 {
        client.query_via(&mut tcp, "//patient/pname").unwrap();
    }
    let dump = tcp.flight_dump().unwrap();
    let lines =
        exq_core::flight::validate_json_lines(&dump).expect("flight dump must be valid JSON lines");
    assert!(
        lines >= 3,
        "expected at least the admit events, got {lines}"
    );
    assert!(dump.contains("\"event\":\"admit\""), "dump:\n{dump}");
    assert!(dump.contains(&format!("\"db\":\"{name}\"")));
    handle.shutdown();
}
