//! Pipelining and the event-loop serve path.
//!
//! The contract under test: replies echo the request's trace and request
//! ids on the wire (the correlation fix), N requests in flight on one
//! connection produce bit-identical answers to the same requests issued
//! serially — across v3/v4/v5 peers and the `Batch` frame — idle
//! connections beyond the worker count cannot starve a fresh client on
//! the event loop, and a peer that stops reading its replies is dropped
//! within the stall budget instead of pinning a worker forever.

use exq_core::codec::{
    frame_extra_len, Message, FRAME_HEADER_LEN, PROTOCOL_VERSION, V3_PROTOCOL_VERSION,
    V4_PROTOCOL_VERSION,
};
use exq_core::constraints::SecurityConstraint;
use exq_core::evloop::serve_event;
use exq_core::retry::{roundtrip_pipelined, RetryConfig};
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::tenant::TenantRegistry;
use exq_core::transport::{serve_multi, Pipeline, ServeConfig, ServeHandle, TcpTransport};
use exq_core::{Client, Server};
use exq_xml::Document;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn hosted() -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
            <patient><pname>Ray</pname><SSN>554433</SSN><age>52</age>
              <insurance><policy coverage="250000">90121</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 77)
        .unwrap()
        .split()
}

fn registry_with(client: &Client, server: Server) -> Arc<TenantRegistry> {
    let registry = Arc::new(TenantRegistry::new("main").unwrap());
    registry
        .create("main", server, client.key_fingerprint(), 0)
        .unwrap();
    registry
}

fn start_event(registry: Arc<TenantRegistry>, config: ServeConfig) -> ServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve_event(listener, registry, config).unwrap()
}

fn start_blocking(registry: Arc<TenantRegistry>, config: ServeConfig) -> ServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve_multi(listener, registry, config).unwrap()
}

/// Server-evaluable queries plus their translated request messages.
fn query_requests(client: &Client) -> Vec<(String, Message)> {
    [
        "//patient/pname",
        "//patient[age > 40]/pname",
        "//insurance/policy",
        "//patient[pname = 'Betty']/age",
        "//nosuchtag",
    ]
    .iter()
    .map(|q| {
        let tq = client.translate(q).unwrap();
        let sq = tq
            .server_query
            .unwrap_or_else(|| panic!("{q} should be server-evaluable"));
        (q.to_string(), Message::Query(sq))
    })
    .collect()
}

/// The answer a reply *is*, shorn of per-execution measurement: server
/// timings, the cache-hit flag, and telemetry spans differ between runs by
/// construction and are not part of answer equivalence.
fn canon(m: &Message) -> Message {
    match m {
        Message::Answer(r) => {
            let mut r = r.clone();
            r.translate_time = Duration::ZERO;
            r.process_time = Duration::ZERO;
            r.served_from_cache = false;
            r.spans.clear();
            Message::Answer(r)
        }
        Message::BatchAnswer(items) => Message::BatchAnswer(items.iter().map(canon).collect()),
        other => other.clone(),
    }
}

/// Reads one whole frame off a raw socket.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let (version, _, payload_len) = Message::parse_header(&header)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    let total = FRAME_HEADER_LEN + frame_extra_len(version) + payload_len;
    let mut frame = vec![0u8; total];
    frame[..FRAME_HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[FRAME_HEADER_LEN..])?;
    Ok(frame)
}

// --------------------------------------------------------------- starvation

/// More idle connections than workers: on the event loop a fresh client
/// still gets answered, because idle sockets cost buffers, not threads.
/// (This is exactly the scenario that wedges the thread-per-connection
/// loop: every worker parked in `read` on an idle socket.)
#[test]
fn idle_connections_do_not_starve_fresh_clients_on_event_loop() {
    let (client, server) = hosted();
    let registry = registry_with(&client, server);
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let handle = start_event(registry, config);

    // 12 connections that say nothing, held open for the whole test.
    let idle: Vec<TcpStream> = (0..12)
        .map(|_| TcpStream::connect(handle.addr()).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();
    let out = client.query_via(&mut tcp, "//patient/pname").unwrap();
    assert_eq!(out.results.len(), 3, "fresh client starved by idle peers");

    drop(idle);
    handle.shutdown();
}

// -------------------------------------------------------------- correlation

/// Replies echo the request's trace and request ids byte-for-byte on the
/// wire — on both serve paths, on answers and on error replies to frames
/// that fail payload decode (where the ids are salvaged from the raw
/// frame).
#[test]
fn replies_echo_ids_on_the_wire() {
    let (client, server) = hosted();
    let registry = registry_with(&client, server);
    for (label, handle) in [
        (
            "blocking",
            start_blocking(Arc::clone(&registry), ServeConfig::default()),
        ),
        (
            "event",
            start_event(registry.clone(), ServeConfig::default()),
        ),
    ] {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        for version in [V3_PROTOCOL_VERSION, V4_PROTOCOL_VERSION, PROTOCOL_VERSION] {
            let trace = 0xDEAD_BEEF_0000_0000u64 | version as u64;
            let req_id = 0x1234_5678_0000_0000u64 | version as u64;
            let frame = Message::Ping.encode_frame_req(version, trace, req_id);
            stream.write_all(&frame).unwrap();
            let reply = read_frame(&mut stream).unwrap();
            let d = Message::decode_frame_ext(&reply).unwrap();
            assert_eq!(d.msg, Message::Pong, "{label} v{version}");
            assert_eq!(d.trace, trace, "{label} v{version} dropped the trace id");
            assert_eq!(
                d.req_id, req_id,
                "{label} v{version} dropped the request id"
            );
        }

        // A frame whose header is fine but whose payload is garbage: the
        // error reply must still carry the ids salvaged from the frame.
        let good = Message::CacheStatsReq.encode_frame_req(PROTOCOL_VERSION, 0xABAD_1DEA, 777);
        let mut corrupt = good.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF; // breaks the checksum, ids stay readable
        stream.write_all(&corrupt).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        let d = Message::decode_frame_ext(&reply).unwrap();
        assert!(
            matches!(d.msg, Message::Error(_)),
            "{label}: corrupt frame should answer Error, got {:?}",
            d.msg
        );
        assert_eq!(d.trace, 0xABAD_1DEA, "{label} error reply dropped trace id");
        assert_eq!(d.req_id, 777, "{label} error reply dropped request id");

        handle.shutdown();
    }
}

// -------------------------------------------------------------- equivalence

/// Serial vs. N-in-flight on one connection: bit-identical answers, for
/// v3, v4, and v5 peers, on both serve paths.
#[test]
fn pipelined_matches_serial_across_versions() {
    let (client, server) = hosted();
    let registry = registry_with(&client, server);
    let reqs: Vec<Message> = query_requests(&client)
        .into_iter()
        .map(|(_, m)| m)
        .chain([Message::Ping])
        .collect();

    for (label, handle) in [
        (
            "blocking",
            start_blocking(Arc::clone(&registry), ServeConfig::default()),
        ),
        (
            "event",
            start_event(registry.clone(), ServeConfig::default()),
        ),
    ] {
        for version in [V3_PROTOCOL_VERSION, V4_PROTOCOL_VERSION, PROTOCOL_VERSION] {
            let mut serial = Pipeline::connect_default(handle.addr())
                .unwrap()
                .with_version(version)
                .unwrap();
            let serial_replies: Vec<Message> = reqs
                .iter()
                .map(|r| {
                    let id = serial.submit(r).unwrap();
                    let (rid, reply) = serial.recv().unwrap();
                    assert_eq!(rid, id, "{label} v{version}: serial reply misattributed");
                    reply
                })
                .collect();

            let mut pipe = Pipeline::connect_default(handle.addr())
                .unwrap()
                .with_version(version)
                .unwrap();
            let pipelined_replies = pipe.roundtrip_many(&reqs).unwrap();

            assert_eq!(serial_replies.len(), pipelined_replies.len());
            for (i, (s, p)) in serial_replies.iter().zip(&pipelined_replies).enumerate() {
                // Identical decoded replies, and identical bytes, once
                // per-execution measurement and framing are held fixed.
                let (s, p) = (canon(s), canon(p));
                assert_eq!(s, p, "{label} v{version} req {i}: answers differ");
                assert_eq!(
                    s.encode_frame_v(version, 0),
                    p.encode_frame_v(version, 0),
                    "{label} v{version} req {i}: answer bytes differ"
                );
            }
        }
        handle.shutdown();
    }
}

/// A v5 `Batch` frame answers item-for-item what the same requests answer
/// when issued serially, and the answers decrypt to the correct results.
#[test]
fn batch_matches_serial_and_decrypts_correctly() {
    let (client, server) = hosted();
    let registry = registry_with(&client, server);
    let handle = start_event(registry, ServeConfig::default());
    let named = query_requests(&client);
    let reqs: Vec<Message> = named.iter().map(|(_, m)| m.clone()).collect();

    let mut serial = Pipeline::connect_default(handle.addr()).unwrap();
    let serial_replies: Vec<Message> = reqs
        .iter()
        .map(|r| {
            serial.submit(r).unwrap();
            serial.recv().unwrap().1
        })
        .collect();

    let mut pipe = Pipeline::connect_default(handle.addr()).unwrap();
    let batched = pipe.batch(&reqs).unwrap();

    assert_eq!(batched.len(), serial_replies.len());
    for (i, (s, b)) in serial_replies.iter().zip(&batched).enumerate() {
        assert_eq!(
            canon(s),
            canon(b),
            "batch item {i} differs from serial answer"
        );
    }

    // Ground truth: the batched answers post-process to the same results
    // the reference query path computes.
    for ((q, _), reply) in named.iter().zip(&batched) {
        let Message::Answer(resp) = reply else {
            panic!("batch item for {q} is not an Answer: {reply:?}");
        };
        let tq = client.translate(q).unwrap();
        let post = client.post_process(&tq.post_query, resp).unwrap();
        let expect = client.translate(q).unwrap();
        // Evaluate the reference through a fresh serial roundtrip.
        let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();
        let reference = client.query_via(&mut tcp, q).unwrap();
        drop(expect);
        assert_eq!(post.results, reference.results, "batched {q}");
    }
    handle.shutdown();
}

// -------------------------------------------------------- retry under load

/// `roundtrip_pipelined` keeps stable ids across `Busy` resubmissions and
/// eventually lands every answer even when admission sheds most of the
/// in-flight window.
#[test]
fn pipelined_retry_recovers_from_busy() {
    let (client, server) = hosted();
    let registry = registry_with(&client, server);
    let config = ServeConfig {
        workers: 4,
        max_inflight: 1,
        cache_entries: Some(0), // no cache-hit promotion past admission
        retry_after: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let handle = start_event(registry, config);

    let reqs: Vec<Message> = query_requests(&client)
        .into_iter()
        .map(|(_, m)| m)
        .collect();
    let mut pipe = Pipeline::connect_default(handle.addr()).unwrap();
    let retry = RetryConfig {
        max_attempts: 20,
        base_backoff: Duration::from_millis(2),
        ..RetryConfig::default()
    };
    let replies = roundtrip_pipelined(&mut pipe, &reqs, &retry).unwrap();
    assert_eq!(replies.len(), reqs.len());
    for (i, reply) in replies.iter().enumerate() {
        assert!(
            matches!(reply, Message::Answer(_)),
            "req {i} never got past Busy: {reply:?}"
        );
    }
    handle.shutdown();
}

// ------------------------------------------------------------ write stalls

/// A peer that submits work and never reads the replies is dropped within
/// the write-stall budget on both serve paths — instead of blocking a
/// worker (blocking loop) or growing the write buffer forever (event
/// loop). Detection: after the stall window, draining the socket must
/// terminate in EOF/reset, not in an endless stream of timeouts.
#[test]
fn stalled_reader_is_dropped_within_budget() {
    let (client, server) = hosted();
    let registry = registry_with(&client, server);
    let io_timeout = Duration::from_millis(400);
    let mk_config = || ServeConfig {
        workers: 2,
        io_timeout,
        accept_backlog: 10_000, // let every request dispatch; the stall is on writes
        ..ServeConfig::default()
    };
    for (label, handle) in [
        (
            "blocking",
            start_blocking(Arc::clone(&registry), mk_config()),
        ),
        ("event", start_event(registry.clone(), mk_config())),
    ] {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // NaiveQuery ships the whole sealed database per reply — the
        // cheapest way to overrun every socket buffer in the path. Enough
        // of them to exceed any auto-tuned kernel buffer by a wide margin.
        // Written from a helper thread: once the server stops reading
        // (blocking loop serves one frame at a time) our own sends may
        // block until the drop resets the connection.
        let mut wstream = stream.try_clone().unwrap();
        let writer = std::thread::spawn(move || {
            for i in 0..20_000u64 {
                let frame = Message::NaiveQuery.encode_frame_req(PROTOCOL_VERSION, 0, i + 1);
                if wstream.write_all(&frame).is_err() {
                    return; // connection dropped mid-send: that's the point
                }
            }
        });
        // Never read. Give the server time to fill the buffers and trip
        // the write-stall budget.
        std::thread::sleep(io_timeout * 4);

        // Drain: buffered replies arrive, then EOF or reset — within a
        // bounded number of reads. A server still pinned on the write
        // would instead time out here forever.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut buf = vec![0u8; 1 << 16];
        let dropped = loop {
            if Instant::now() > deadline {
                break false;
            }
            match stream.read(&mut buf) {
                Ok(0) => break true,
                Ok(_) => {}
                Err(e)
                    if e.kind() == ErrorKind::ConnectionReset
                        || e.kind() == ErrorKind::BrokenPipe =>
                {
                    break true
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    break false
                }
                Err(e) => panic!("{label}: unexpected read error: {e}"),
            }
        };
        assert!(dropped, "{label}: stalled reader was not dropped");
        writer.join().unwrap();
        handle.shutdown();
    }
    let _ = client;
}

/// After dropping a stalled reader the server keeps serving fresh clients.
#[test]
fn server_survives_stalled_reader() {
    let (client, server) = hosted();
    let registry = registry_with(&client, server);
    let config = ServeConfig {
        workers: 2,
        io_timeout: Duration::from_millis(300),
        accept_backlog: 10_000,
        ..ServeConfig::default()
    };
    let handle = start_event(registry, config);

    let mut staller = TcpStream::connect(handle.addr()).unwrap();
    for i in 0..2000usize {
        let frame = Message::NaiveQuery.encode_frame_req(PROTOCOL_VERSION, 0, i as u64 + 1);
        staller.write_all(&frame).unwrap();
    }
    std::thread::sleep(Duration::from_millis(900));

    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();
    let out = client.query_via(&mut tcp, "//patient/pname").unwrap();
    assert_eq!(out.results.len(), 3);
    drop(staller);
    handle.shutdown();
}
