//! Security-property assertions over the hosted system: what the paper
//! proves analytically, checked operationally against what the server
//! actually stores.

use encrypted_xml::core::analysis::{attack, counting};
use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::core::SecurityConstraint;
use encrypted_xml::workload::{hospital, nasa, xmark};
use encrypted_xml::xpath::eval_document;

/// Everything captured by a node-type SC must be invisible to the server:
/// its tags appear neither in the visible document nor as plaintext keys in
/// the DSI table.
#[test]
fn node_type_constraints_hide_subtrees() {
    let doc = hospital::document();
    let cs = hospital::constraints();
    for kind in SchemeKind::ALL {
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &cs, kind, 3)
            .unwrap();
        let visible = hosted.server.visible_xml();
        for tag in ["insurance", "policy"] {
            assert!(
                !visible.contains(&format!("<{tag}")),
                "{kind:?}: {tag} visible"
            );
            assert!(
                hosted.server.metadata().dsi_table.lookup(tag).is_empty(),
                "{kind:?}: plaintext {tag} in DSI table"
            );
        }
        // Insurance leaf values must not leak either.
        for v in ["34221", "78543", "1000000"] {
            assert!(!visible.contains(v), "{kind:?}: value {v} visible");
        }
    }
}

/// For every association SC and every context binding, at least one endpoint
/// must be inside an encryption block (the `is_enforced` semantics), for all
/// schemes and both workloads.
#[test]
fn association_constraints_enforced_everywhere() {
    for (doc, cs) in [
        (xmark::generate_people(30, 5), xmark::constraints()),
        (nasa::generate_datasets(30, 5), nasa::constraints()),
    ] {
        for kind in SchemeKind::ALL {
            let hosted = Outsourcer::new(OutsourceConfig::default())
                .outsource(&doc, &cs, kind, 9)
                .unwrap();
            assert!(
                hosted.scheme.enforces(&doc, &cs),
                "{kind:?} does not enforce the constraints"
            );
        }
    }
}

/// The OPESS value index never exposes a ciphertext histogram that the
/// exact-frequency attacker can crack, for any indexed attribute.
#[test]
fn value_index_resists_frequency_attack() {
    let doc = xmark::generate_people(150, 8);
    let cs = xmark::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 8)
        .unwrap();
    let plain = doc.value_histogram();
    let state = hosted.client.state();
    let mut attrs_checked = 0;
    for (attr, opess) in &state.opess {
        let Some(p) = plain.get(attr) else { continue };
        let hist = attack::opess_cipher_histogram(opess, p);
        let out = attack::frequency_attack_strings(p, &hist);
        assert_eq!(out.correct, 0, "attribute {attr} cracked");
        attrs_checked += 1;
    }
    assert!(attrs_checked >= 2, "too few attributes exercised");
}

/// Theorem 4.1 operationally: every sealed block has a unique ciphertext
/// (decoys guarantee this even for equal plaintexts), so the size-based +
/// frequency-based attacker cannot match blocks to contents.
#[test]
fn blocks_are_pairwise_distinct() {
    let doc = hospital::scaled(120, 4);
    let cs = vec![SecurityConstraint::parse("//disease").unwrap()];
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 4)
        .unwrap();
    let resp = hosted.server.answer_naive().unwrap();
    let mut seen = std::collections::HashSet::new();
    for b in &resp.blocks {
        assert!(seen.insert(b.ciphertext.clone()), "duplicate ciphertext");
    }
    // Only five distinct disease strings back those 100+ blocks.
    let distinct_plain: std::collections::HashSet<String> = eval_document(
        &doc,
        &encrypted_xml::xpath::Path::parse("//disease").unwrap(),
    )
    .into_iter()
    .map(|n| doc.text_value(n))
    .collect();
    assert!(distinct_plain.len() <= 5);
    assert!(resp.blocks.len() > 50);
}

/// The candidate-database count for the hosted system is "large"
/// (Definition 3.3/3.4): at least exponential in the histogram size.
#[test]
fn candidate_counts_are_exponential() {
    let doc = nasa::generate_datasets(60, 6);
    let hist = doc.value_histogram();
    let ages: Vec<u64> = hist["age"].values().map(|&c| c as u64).collect();
    let count = counting::encryption_candidates(&ages);
    assert!(
        count.approx_log10() > 20.0,
        "candidate count not exponential: 10^{:.1}",
        count.approx_log10()
    );
}

/// Observing queries and answers never increases the attacker's belief
/// (Theorem 6.1) — driven through real query traffic.
#[test]
fn belief_non_increasing_over_real_traffic() {
    use encrypted_xml::core::analysis::belief::BeliefTracker;
    use encrypted_xml::workload::{generate_queries, QueryClass};
    let doc = nasa::generate_datasets(40, 6);
    let cs = nasa::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 6)
        .unwrap();
    let mut tracker = BeliefTracker::new(10, 40);
    for class in QueryClass::ALL {
        for q in generate_queries(&doc, class, 4, 6) {
            hosted.query(&q).unwrap();
            tracker.observe_query();
        }
    }
    assert!(tracker.is_non_increasing());
}

/// The Vernam tag cipher never maps two different tags of the vocabulary to
/// the same table key, and no plaintext sensitive tag string appears among
/// the server's table keys.
#[test]
fn dsi_table_keys_are_safe() {
    let doc = xmark::generate_people(40, 5);
    let cs = xmark::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 5)
        .unwrap();
    let state = hosted.client.state();
    let table = hosted.server.metadata().dsi_table.clone();
    let keys: std::collections::HashSet<&str> = table.iter().map(|(k, _)| k).collect();
    for tag in &state.encrypted_tags {
        // Encrypted-only tags must not appear in plaintext form.
        if !state.plain_tags.contains(tag) {
            assert!(!keys.contains(tag.as_str()), "{tag} leaked in table keys");
        }
    }
}
