//! Robustness: malformed inputs must produce errors, never panics, at every
//! public entry point; concurrent read-only querying must be safe.

use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::core::SecurityConstraint;
use encrypted_xml::workload::hospital;
use encrypted_xml::xml::Document;
use encrypted_xml::xpath::Path;
use std::sync::Arc;

#[test]
fn malformed_xml_is_an_error() {
    let bad = [
        "",
        "<",
        "<a",
        "<a></b>",
        "<a><b></a></b>",
        "text only",
        "<a/><b/>",
        "<a x=></a>",
        "<a x='1' x='2'",
        "<!-- unterminated",
        "<a><![CDATA[never closed</a>",
        "</closing-first>",
        "<a>&#xFFFFFFFF;</a>",
    ];
    for b in bad {
        // Parsing may succeed leniently (entities) or fail — never panic.
        let _ = Document::parse(b);
    }
    // These specifically must fail.
    for b in ["", "<", "<a></b>", "<a/><b/>"] {
        assert!(Document::parse(b).is_err(), "{b:?} should fail");
    }
}

#[test]
fn malformed_xpath_is_an_error() {
    let bad = [
        "",
        "//",
        "/",
        "//a[",
        "//a]",
        "//a[b=]",
        "//a[b='x]",
        "//a[[b]]",
        "//a[()]",
        "//a[not(]",
        "//a[1 and]",
        "//a || //b",
        "@",
        "//a/@",
        "//a[b <>< 2]",
    ];
    for b in bad {
        assert!(Path::parse(b).is_err(), "{b:?} should fail to parse");
    }
}

#[test]
fn malformed_constraints_are_errors() {
    for b in ["", "//a:(", "//a:(b", "//a:()", ":(a, b)", "//a:(b c)"] {
        assert!(
            SecurityConstraint::parse(b).is_err(),
            "{b:?} should fail to parse"
        );
    }
    // Single-path form with garbage.
    assert!(SecurityConstraint::parse("//[").is_err());
}

#[test]
fn queries_on_weird_documents_never_panic() {
    let weird_docs = [
        "<a/>",
        "<a><a><a><a/></a></a></a>",
        "<r><x/><x/><x/><x/><x/><x/><x/><x/></r>",
        "<r a=\"1\" b=\"2\" c=\"3\"/>",
        "<r>&amp;&lt;&gt;</r>",
    ];
    let queries = [
        "//a",
        "//a/a/a",
        "/a",
        "//*",
        "//x[9]",
        "//x[last()]",
        "//@a",
        "//r[@a = 1 and @b = 2]",
        "//missing//also//missing",
    ];
    for d in weird_docs {
        let doc = Document::parse(d).unwrap();
        let cs = vec![SecurityConstraint::parse("//a:(/x, /y)").unwrap()];
        for kind in SchemeKind::ALL {
            let hosted = Outsourcer::new(OutsourceConfig::default())
                .outsource(&doc, &cs, kind, 1)
                .unwrap();
            for q in queries {
                let _ = hosted.query(q).unwrap();
            }
        }
    }
}

#[test]
fn single_node_document() {
    let doc = Document::parse("<only/>").unwrap();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &[], SchemeKind::Opt, 1)
        .unwrap();
    assert_eq!(hosted.query("/only").unwrap().results, ["<only/>"]);
    assert!(hosted.query("//nothing").unwrap().results.is_empty());
}

#[test]
fn concurrent_queries_share_one_server() {
    let doc = hospital::scaled(60, 2);
    let cs = hospital::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 2)
        .unwrap();
    let (client, server) = hosted.split();
    let client = Arc::new(client);
    let server = Arc::new(server);
    let expected = client.query(&server, "//patient[age = 33]/pname").unwrap();

    let mut handles = Vec::new();
    for t in 0..8 {
        let client = Arc::clone(&client);
        let server = Arc::clone(&server);
        let expected = expected.results.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..20 {
                let q = match (t + i) % 3 {
                    0 => "//patient[age = 33]/pname",
                    1 => "//patient[age = 33]/pname",
                    _ => "//patient[age = 33]/pname",
                };
                let out = client.query(&server, q).unwrap();
                assert_eq!(out.results, expected);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn zero_constraints_still_works() {
    let doc = hospital::document();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &[], SchemeKind::Opt, 5)
        .unwrap();
    // Nothing to protect: no blocks, everything visible, queries exact.
    assert_eq!(hosted.setup.block_count, 0);
    let out = hosted.query("//patient[pname = 'Betty']/SSN").unwrap();
    assert_eq!(out.results, ["<SSN>763895</SSN>"]);
}
