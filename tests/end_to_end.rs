//! Cross-crate integration: generated workloads through the full secure
//! pipeline, answers cross-checked against the plaintext reference.

use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::workload::{generate_queries, QueryClass};
use encrypted_xml::workload::{nasa, xmark};
use encrypted_xml::xml::Document;
use encrypted_xml::xpath::{eval_document, Path};

fn reference(doc: &Document, query: &str) -> Vec<String> {
    let path = Path::parse(query).unwrap();
    eval_document(doc, &path)
        .into_iter()
        .map(|n| match doc.node(n).kind() {
            encrypted_xml::xml::NodeKind::Element(_) => doc.node_to_xml(n),
            encrypted_xml::xml::NodeKind::Attribute(_, v) => v.clone(),
            encrypted_xml::xml::NodeKind::Text(t) => t.clone(),
        })
        .collect()
}

fn check_workload(
    doc: &Document,
    constraints: &[encrypted_xml::core::SecurityConstraint],
    kind: SchemeKind,
    seed: u64,
) {
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(doc, constraints, kind, seed)
        .unwrap();
    for class in QueryClass::ALL {
        for q in generate_queries(doc, class, 4, seed) {
            let mut expected = reference(doc, &q);
            let mut got = hosted
                .query(&q)
                .unwrap_or_else(|e| panic!("{q} failed: {e}"))
                .results;
            expected.sort();
            got.sort();
            assert_eq!(got, expected, "mismatch for {q} ({kind:?})");
        }
    }
}

#[test]
fn xmark_roundtrip_all_schemes() {
    let doc = xmark::generate_people(40, 7);
    let cs = xmark::constraints();
    for kind in SchemeKind::ALL {
        check_workload(&doc, &cs, kind, 21);
    }
}

#[test]
fn nasa_roundtrip_all_schemes() {
    let doc = nasa::generate_datasets(40, 7);
    let cs = nasa::constraints();
    for kind in SchemeKind::ALL {
        check_workload(&doc, &cs, kind, 22);
    }
}

#[test]
fn xmark_value_predicates() {
    let doc = xmark::generate_people(60, 9);
    let cs = xmark::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 3)
        .unwrap();
    // Pick a real name and income from the data.
    let names = eval_document(&doc, &Path::parse("//name").unwrap());
    let name = doc.text_value(names[0]);
    let queries = [
        format!("//person[name = '{name}']/age"),
        format!("//person[name = '{name}']/creditcard"),
        "//person[profile/income >= 100000]/age".to_owned(),
        "//person[profile/income < 50000]/emailaddress".to_owned(),
        "//person[address/city = 'Vancouver']/name".to_owned(),
    ];
    for q in &queries {
        let mut expected = reference(&doc, q);
        let mut got = hosted.query(q).unwrap().results;
        expected.sort();
        got.sort();
        assert_eq!(got, expected, "mismatch for {q}");
    }
}

#[test]
fn nasa_value_predicates() {
    let doc = nasa::generate_datasets(60, 9);
    let cs = nasa::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 3)
        .unwrap();
    let queries = [
        "//dataset[date/year >= 1990]/altname",
        "//dataset[date/year < 1970]//last",
        "//author[last = 'Smith']/initial",
        "//dataset[.//publisher = 'AstroPress']/title",
        "//journal[city = 'Seoul']/publisher",
    ];
    for q in queries {
        let mut expected = reference(&doc, q);
        let mut got = hosted.query(q).unwrap().results;
        expected.sort();
        got.sort();
        assert_eq!(got, expected, "mismatch for {q}");
    }
}

#[test]
fn quickstart_flow() {
    use encrypted_xml::prelude::*;
    let doc = Document::parse(
        "<hospital><patient><pname>Betty</pname><SSN>1213</SSN></patient></hospital>",
    )
    .unwrap();
    let constraints = vec![SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap()];
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &constraints, SchemeKind::Opt, 42)
        .unwrap();
    let (client, server) = hosted.split();
    let outcome = client.query(&server, "//patient/SSN").unwrap();
    assert_eq!(outcome.results.len(), 1);
}

#[test]
fn larger_scale_smoke() {
    // ~1 MB document through the full pipeline.
    let doc = nasa::generate(&nasa::NasaConfig {
        target_bytes: 1024 * 1024,
        seed: 5,
    });
    let cs = nasa::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, 5)
        .unwrap();
    let q = "//dataset[date/year = 1980]/title";
    let mut expected = reference(&doc, q);
    let mut got = hosted.query(q).unwrap().results;
    expected.sort();
    got.sort();
    assert_eq!(got, expected);
    // The secure path must ship far less than the hosted size.
    let out = hosted.query(q).unwrap();
    assert!(out.bytes_to_client < hosted.server.hosted_bytes() / 2);
}
