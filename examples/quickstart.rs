//! Quickstart: outsource a tiny database, run one query, inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use encrypted_xml::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The data owner's plaintext database.
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age></patient>
           </hospital>"#,
    )?;

    // 2. What must be protected: the name↔SSN association.
    let constraints = vec![SecurityConstraint::parse("//patient:(/pname, /SSN)")?];

    // 3. Outsource: build the optimal secure encryption scheme, seal the
    //    blocks, construct the server metadata.
    let hosted = Outsourcer::new(OutsourceConfig::default()).outsource(
        &doc,
        &constraints,
        SchemeKind::Opt,
        42,
    )?;
    println!(
        "outsourced: {} blocks, {} hosted bytes, scheme size {}",
        hosted.setup.block_count,
        hosted.setup.hosted_bytes(),
        hosted.setup.scheme_size,
    );

    // 4. Query through the secure pipeline.
    let outcome = hosted.query("//patient[age >= 36]/SSN")?;
    println!("results: {:?}", outcome.results);
    println!(
        "phases: translate {:?} | server {:?} | transmit {:?} | decrypt {:?} | post {:?}",
        outcome.timing.client_translate,
        outcome.timing.server_translate + outcome.timing.server_process,
        outcome.timing.transmit,
        outcome.timing.decrypt,
        outcome.timing.post_process,
    );
    println!(
        "shipped {} bytes / {} blocks (hosted total: {} bytes)",
        outcome.bytes_to_client,
        outcome.blocks_shipped,
        hosted.server.hosted_bytes(),
    );

    assert_eq!(outcome.results, ["<SSN>276543</SSN>"]);
    Ok(())
}
