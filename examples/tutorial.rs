//! Full-feature tour: outsourcing, querying, aggregates, updates, and
//! persistence — everything a downstream user touches, in one script.
//!
//! ```sh
//! cargo run --release --example tutorial
//! ```

use encrypted_xml::core::aggregate::Aggregate;
use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::core::{Client, SecurityConstraint, Server};
use encrypted_xml::xml::Document;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------ 1. outsourcing ----
    let doc = Document::parse(
        r#"<clinic>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
           </clinic>"#,
    )?;
    let constraints = vec![
        SecurityConstraint::parse("//insurance")?,
        SecurityConstraint::parse("//patient:(/pname, /SSN)")?,
    ];
    let hosted = Outsourcer::new(OutsourceConfig::default()).outsource(
        &doc,
        &constraints,
        SchemeKind::Opt,
        2024,
    )?;
    println!(
        "outsourced: {} blocks, {} hosted bytes",
        hosted.setup.block_count,
        hosted.setup.hosted_bytes()
    );
    let (mut client, mut server) = hosted.split();

    // ------------------------------------------------ 2. querying -------
    let out = client.query(&server, "//patient[.//policy/@coverage >= 10000]/age")?;
    println!("high-coverage patients' ages: {:?}", out.results);
    assert_eq!(out.results, ["<age>35</age>"]);

    // Boolean, positional, and union queries all work.
    let out = client.query(
        &server,
        "//patient[age = 35 or age = 40]/pname | //patient[1]/SSN",
    )?;
    println!("union query: {} results", out.results.len());

    // ------------------------------------------------ 3. aggregates -----
    let max = client.aggregate(&server, "//policy/@coverage", Aggregate::Max)?;
    println!(
        "MAX coverage = {:?} (decrypted {} block)",
        max.value, max.blocks_decrypted
    );
    assert_eq!(max.value.as_deref(), Some("1000000"));

    // ------------------------------------------------ 4. updates --------
    client.insert(
        &mut server,
        "/clinic",
        "<patient><pname>Zoe</pname><SSN>112233</SSN><age>29</age>
           <insurance><policy coverage=\"7500\">90210</policy></insurance></patient>",
        7,
    )?;
    let out = client.query(&server, "//patient[pname = 'Zoe']/age")?;
    assert_eq!(out.results, ["<age>29</age>"]);
    println!("inserted Zoe; she is queryable under the same policy");

    let deleted = client.delete(&mut server, "//patient[age = 40]")?;
    println!("deleted {} patient(s)", deleted.deleted);

    // ------------------------------------------------ 5. persistence ----
    let dir = std::env::temp_dir().join("exq-tutorial");
    std::fs::create_dir_all(&dir)?;
    let (spath, cpath) = (dir.join("server.exq"), dir.join("client.exq"));
    server.save(&spath)?;
    client.save(&cpath)?;
    let server2 = Server::load(&spath)?;
    let client2 = Client::load(&cpath)?;
    let out = client2.query(&server2, "//patient/pname")?;
    println!("after reload: {} patients", out.results.len());
    assert_eq!(out.results.len(), 2);
    std::fs::remove_dir_all(&dir).ok();

    println!("tutorial complete ✓");
    Ok(())
}
