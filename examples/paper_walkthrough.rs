//! A guided walkthrough of the paper's running artifacts, section by
//! section, printed side by side with what this implementation produces:
//!
//! * §3.2 / Example 3.1 — the security constraints;
//! * §4.1 / Figure 2    — the encrypted health-care database (blocks, decoys);
//! * §5.1 / Figure 4    — the DSI index table and encryption block table;
//! * §5.2 / Figure 6    — OPESS frequency flattening;
//! * §6.1 / Figure 7    — client query translation;
//! * §6.2               — server-side evaluation (EXPLAIN view);
//! * Theorems 4.1/5.2   — the candidate counts for this very database.
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use encrypted_xml::core::analysis::counting;
use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::workload::hospital;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== §3.2 / Example 3.1: security constraints =====================");
    let doc = hospital::document();
    let constraints = hospital::constraints();
    for (i, sc) in constraints.iter().enumerate() {
        println!("  SC{}: {sc}", i + 1);
    }

    println!("\n== §4.1 / Figure 2: the encrypted database ======================");
    let hosted = Outsourcer::new(OutsourceConfig::default()).outsource(
        &doc,
        &constraints,
        SchemeKind::Opt,
        2006,
    )?;
    println!(
        "  optimal secure scheme: {} blocks, |S| = {}",
        hosted.setup.block_count, hosted.setup.scheme_size
    );
    println!("  server-visible document (sensitive subtrees are markers):");
    println!("    {}", hosted.server.visible_xml());

    println!("\n== §5.1 / Figure 4: metadata on the server ======================");
    let meta = hosted.server.metadata();
    println!(
        "  (b) DSI index table ({} tags):",
        meta.dsi_table.tag_count()
    );
    let mut rows: Vec<(String, usize)> = meta
        .dsi_table
        .iter()
        .map(|(tag, ivs)| (tag.to_owned(), ivs.len()))
        .collect();
    rows.sort();
    for (tag, n) in rows.iter().take(8) {
        let display_tag = if tag.len() > 12 { &tag[..12] } else { tag };
        println!("      {display_tag:<14} {n} interval(s)");
    }
    if rows.len() > 8 {
        println!("      … {} more tags", rows.len() - 8);
    }
    println!(
        "  (a) encryption block table ({} blocks):",
        meta.block_table.len()
    );
    for (iv, id) in meta.block_table.iter().take(4) {
        println!(
            "      block {id}: representative interval [{}, {}]",
            iv.lo, iv.hi
        );
    }

    println!("\n== §5.2 / Figure 6: OPESS value index ===========================");
    let state = hosted.client.state();
    let mut attrs: Vec<&String> = state.opess.keys().collect();
    attrs.sort();
    for attr in attrs {
        let plan = &state.opess[attr].plan;
        println!(
            "  attribute `{attr}`: m = {}, K = {} keys, {} plaintext values -> {} ciphertexts",
            plan.m(),
            plan.key_count(),
            plan.entries().len(),
            plan.split_histogram().len(),
        );
    }

    println!("\n== §6.1 / Figure 7: query translation on the client =============");
    let q = "//patient[.//insurance//@coverage >= 10000]//SSN";
    println!("  original query Q:   {q}");
    let tq = hosted.client.translate(q)?;
    let sq = tq.server_query.as_ref().expect("server-evaluable");
    println!("  translated query Q': {sq}");

    println!("\n== §6.2: server-side evaluation (EXPLAIN) =======================");
    let explain = hosted.server.explain(sq);
    for (i, step) in explain.steps.iter().enumerate() {
        let marker = if i == explain.anchor {
            "  <- anchor"
        } else {
            ""
        };
        println!(
            "  step {i}: {} candidate interval(s) -> {} survivor(s){marker}",
            step.candidates, step.survivors
        );
    }
    let outcome = hosted.query(q)?;
    println!(
        "  answer after decryption + post-processing: {:?}",
        outcome.results
    );
    assert_eq!(outcome.results, ["<SSN>763895</SSN>"]);

    println!("\n== Theorems 4.1 / 5.2 on this database ==========================");
    let hist = doc.value_histogram();
    let disease_freqs: Vec<u64> = hist["disease"].values().map(|&c| c as u64).collect();
    println!(
        "  Thm 4.1, `disease` histogram {disease_freqs:?}: {} candidate databases",
        counting::encryption_candidates(&disease_freqs)
    );
    println!(
        "  Thm 5.2, paper's (n=15, k=5) example: {} order-preserving splittings",
        counting::value_candidates(15, 5)
    );
    println!("\nwalkthrough complete ✓");
    Ok(())
}
