//! The paper's running example: the Figure 2 health-care database with the
//! Example 3.1 security constraints, including the §6 worked query
//! `//patient[.//insurance//@coverage >= 10000]//SSN`.
//!
//! ```sh
//! cargo run --release --example healthcare
//! ```

use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::workload::hospital;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = hospital::document();
    let constraints = hospital::constraints();

    println!("security constraints (Example 3.1):");
    for sc in &constraints {
        println!("  {sc}");
    }

    for kind in SchemeKind::ALL {
        let hosted =
            Outsourcer::new(OutsourceConfig::default()).outsource(&doc, &constraints, kind, 7)?;
        println!(
            "\nscheme {:>4}: {} blocks, scheme size {}, hosted {} bytes",
            kind.name(),
            hosted.setup.block_count,
            hosted.setup.scheme_size,
            hosted.setup.hosted_bytes(),
        );
        assert!(hosted.scheme.enforces(&doc, &constraints));

        // The §6.1/Figure 7(b) worked query.
        let q = "//patient[.//insurance//@coverage >= 10000]//SSN";
        let outcome = hosted.query(q)?;
        println!("  {q}");
        println!("    -> {:?}", outcome.results);
        println!(
            "    shipped {} bytes, {} blocks; total {:?}",
            outcome.bytes_to_client,
            outcome.blocks_shipped,
            outcome.timing.total(),
        );
    }

    // Show what the server actually sees under the optimal scheme.
    let hosted = Outsourcer::new(OutsourceConfig::default()).outsource(
        &doc,
        &constraints,
        SchemeKind::Opt,
        7,
    )?;
    println!("\nserver-visible document (opt scheme):");
    println!("{}", hosted.server.visible_xml());
    println!(
        "\nDSI index table: {} tags, {} interval entries; value indexes: {} attributes",
        hosted.server.metadata().dsi_table.tag_count(),
        hosted.server.metadata().dsi_table.entry_count(),
        hosted.server.metadata().value_indexes.len(),
    );
    Ok(())
}
