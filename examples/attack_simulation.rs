//! Attack-model demonstration (§3.3, §4.1, Theorems 4.1/5.2/6.1):
//!
//! 1. frequency-based attack against naive deterministic leaf encryption
//!    (succeeds) vs the decoy + OPESS design (fails);
//! 2. exact candidate-database counts showing "large = exponential";
//! 3. the belief sequence of an attacker watching a query stream
//!    (non-increasing, Theorem 6.1).
//!
//! ```sh
//! cargo run --release --example attack_simulation
//! ```

use encrypted_xml::core::analysis::{attack, belief, counting};
use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::workload::xmark;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = xmark::generate_people(120, 9);
    let constraints = xmark::constraints();

    // --- 1. Frequency-based attack -------------------------------------
    // The attacker's background knowledge: exact plaintext histograms.
    let plain_hists = doc.value_histogram();
    let name_hist: HashMap<String, usize> = plain_hists["name"].clone();

    // (a) Naive deterministic encryption: ciphertext histogram equals the
    //     plaintext histogram, owners fully exposed.
    let naive_cipher: Vec<(u64, Option<String>)> = name_hist
        .iter()
        .map(|(k, &c)| (c as u64, Some(k.clone())))
        .collect();
    let naive = attack::frequency_attack_strings(&name_hist, &naive_cipher);
    println!(
        "frequency attack vs naive deterministic encryption: {}/{} values cracked ({:.0}%)",
        naive.correct,
        naive.total,
        naive.success_rate() * 100.0
    );

    // (b) Our system: the attacker reads the OPESS histogram.
    let hosted = Outsourcer::new(OutsourceConfig::default()).outsource(
        &doc,
        &constraints,
        SchemeKind::Opt,
        77,
    )?;
    let state = hosted.client.state();
    let best = state
        .opess
        .get("name")
        .map(|attr| {
            let hist = attack::opess_cipher_histogram(attr, &name_hist);
            attack::frequency_attack_strings(&name_hist, &hist)
        })
        .unwrap_or(attack::FrequencyAttackOutcome {
            claimed: 0,
            correct: 0,
            total: name_hist.len(),
        });
    println!(
        "frequency attack vs OPESS value index:               {}/{} correct ({} claimed)",
        best.correct, best.total, best.claimed
    );
    assert!(best.correct < naive.correct.max(1));

    // --- 2. Candidate counting ------------------------------------------
    let freqs: Vec<u64> = name_hist.values().map(|&c| c as u64).collect();
    let candidates = counting::encryption_candidates(&freqs);
    println!(
        "\nTheorem 4.1 candidate databases for the name attribute: {} (~10^{:.0})",
        candidates,
        candidates.approx_log10()
    );
    println!(
        "paper's worked example (3,4,5): {}",
        counting::encryption_candidates(&[3, 4, 5])
    );
    println!(
        "Theorem 5.2 value-splitting candidates (n=15, k=5): {}",
        counting::value_candidates(15, 5)
    );

    // --- 3. Belief under query observation -------------------------------
    let k = name_hist.len() as u64;
    let n = hosted
        .server
        .metadata()
        .value_indexes
        .values()
        .map(|t| t.key_histogram().len() as u64)
        .max()
        .unwrap_or(k)
        .max(k);
    let mut tracker = belief::BeliefTracker::new(k, n);
    for _ in 0..10 {
        tracker.observe_query();
    }
    println!("\nTheorem 6.1 belief sequence over 10 observed queries:");
    for (i, b) in tracker.sequence().iter().enumerate() {
        println!("  after {i:>2} queries: Bel = {b:.3e}");
    }
    assert!(tracker.is_non_increasing());
    println!("belief is non-increasing ✓");
    Ok(())
}
