//! Encryption-granularity study (§4, §7.4): how the four schemes trade
//! encryption cost, hosted size, and query performance on a NASA-like
//! document.
//!
//! ```sh
//! cargo run --release --example scheme_tradeoffs
//! ```

use encrypted_xml::core::scheme::SchemeKind;
use encrypted_xml::core::system::{OutsourceConfig, Outsourcer};
use encrypted_xml::workload::{generate_queries, nasa, QueryClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = nasa::generate(&nasa::NasaConfig {
        target_bytes: 256 * 1024,
        seed: 5,
    });
    let constraints = nasa::constraints();
    println!(
        "document: {} bytes, {} nodes, height {}",
        doc.serialized_size(),
        doc.len(),
        doc.height()
    );

    println!(
        "\n{:>6} {:>8} {:>12} {:>12} {:>12}",
        "scheme", "blocks", "scheme size", "hosted B", "enc time"
    );
    let mut hosted_by_kind = Vec::new();
    for kind in SchemeKind::ALL {
        let hosted =
            Outsourcer::new(OutsourceConfig::default()).outsource(&doc, &constraints, kind, 13)?;
        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>12?}",
            kind.name(),
            hosted.setup.block_count,
            hosted.setup.scheme_size,
            hosted.setup.hosted_bytes(),
            hosted.setup.encrypt_time,
        );
        hosted_by_kind.push((kind, hosted));
    }

    for class in QueryClass::ALL {
        let queries = generate_queries(&doc, class, 5, 31);
        println!(
            "\nquery class {} ({} queries): total round-trip time per scheme",
            class.name(),
            queries.len()
        );
        for (kind, hosted) in &hosted_by_kind {
            let mut total = std::time::Duration::ZERO;
            let mut bytes = 0usize;
            for q in &queries {
                let out = hosted.query(q)?;
                total += out.timing.total();
                bytes += out.bytes_to_client;
            }
            println!(
                "  {:>4}: {:>12?}  ({} bytes shipped)",
                kind.name(),
                total / queries.len() as u32,
                bytes / queries.len()
            );
        }
    }
    Ok(())
}
