//! # encrypted-xml
//!
//! Facade crate for the reproduction of *Efficient Secure Query Evaluation
//! over Encrypted XML Databases* (Wang & Lakshmanan, VLDB 2006).
//!
//! The system lets a data owner host a partially-encrypted XML database on an
//! untrusted server while still evaluating XPath queries efficiently:
//!
//! 1. The owner specifies [security constraints](exq_core::constraints) —
//!    node-type constraints (`//insurance`) and association constraints
//!    (`//patient:(/pname, /SSN)`).
//! 2. A [secure encryption scheme](exq_core::scheme) is derived (optimal
//!    scheme selection is NP-hard; exact and approximate solvers live in
//!    [`exq_core::cover`]), the sensitive subtrees are encrypted as blocks
//!    with decoys, and server-side metadata is built: the
//!    [DSI structural index](exq_index::dsi) and the
//!    [OPESS value index](exq_crypto::opess).
//! 3. Queries are [translated by the client](exq_core::client), evaluated on
//!    the server with [structural joins](exq_index::sjoin) and B-tree range
//!    scans, and the returned blocks are decrypted and post-processed by the
//!    client so that the final answer equals the answer on the plaintext
//!    database.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every reproduced table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use encrypted_xml::prelude::*;
//!
//! let doc = Document::parse(
//!     "<hospital><patient><pname>Betty</pname><SSN>1213</SSN></patient></hospital>",
//! )
//! .unwrap();
//! let constraints = vec![SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap()];
//! let hosted = Outsourcer::new(OutsourceConfig::default())
//!     .outsource(&doc, &constraints, SchemeKind::Opt, 42)
//!     .unwrap();
//! let (client, mut server) = hosted.split();
//! let outcome = client.query(&mut server, "//patient/SSN").unwrap();
//! assert_eq!(outcome.results.len(), 1);
//! ```

pub use exq_core as core;
pub use exq_crypto as crypto;
pub use exq_index as index;
pub use exq_workload as workload;
pub use exq_xml as xml;
pub use exq_xpath as xpath;

/// Most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use exq_core::client::Client;
    pub use exq_core::constraints::SecurityConstraint;
    pub use exq_core::scheme::SchemeKind;
    pub use exq_core::server::Server;
    pub use exq_core::system::{HostedDatabase, OutsourceConfig, Outsourcer, QueryOutcome};
    pub use exq_xml::Document;
    pub use exq_xpath::Path;
}
